"""Adaptive-vs-static serving comparison under drifting traffic.

The drift scenario suite answers the question behind the control subsystem:
*when traffic drifts, what does closing the loop actually buy?*  Each
scenario serves the same drifting request stream twice from the same initial
configuration — once statically (the configuration is served forever, which
is what PRs 1–4 did) and once adaptively (the
:class:`~repro.control.controller.ReconfigurationController` re-tunes
mid-run) — and compares cost per request and tail latency.  An *oracle*
reference re-tunes for free at every phase boundary with the phase's true
mix (searched offline, served uncontended), turning the comparison into a
regret: how far each strategy is from per-phase optimal cost.

Scenarios cover the drift families the ROADMAP asks for: input-mix shifts
in both directions (video), a from-base online tuning run, a flash crowd
and a diurnal ramp (chatbot).  Everything derives from one seed and is
bit-reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.controller import ControllerOptions, MixtureObjective
from repro.execution.backend import build_backend
from repro.execution.serving import percentile
from repro.experiments.harness import ExperimentSettings, make_searcher
from repro.experiments.serving_experiment import (
    ServingReport,
    ServingSettings,
    run_serving_experiment,
)
from repro.workflow.resources import WorkflowConfiguration
from repro.workloads.arrivals import DriftingTrafficModel, TrafficPhase, TrafficProfile
from repro.workloads.registry import get_workload

__all__ = [
    "DRIFT_SCENARIO_NAMES",
    "DriftScenarioSpec",
    "PhaseStats",
    "RetuneImpact",
    "AdaptiveComparison",
    "DriftSuiteReport",
    "phase_mixture",
    "build_drift_scenarios",
    "run_drift_scenario",
    "run_drift_suite",
]


@dataclass(frozen=True)
class DriftScenarioSpec:
    """One named drift scenario: a traffic story plus controller wiring."""

    name: str
    description: str
    workload: str
    settings: ServingSettings
    #: Mixture the initial configuration is tuned on before the run; ``None``
    #: keeps ``settings``' own configuration source (e.g. ``method="base"``).
    tune_mixture: Optional[Tuple[Tuple[float, float], ...]] = None


@dataclass
class PhaseStats:
    """Outcome statistics of one traffic phase within one run."""

    name: str
    start_seconds: float
    end_seconds: float
    completed: int
    mean_cost: float
    latency_p99_seconds: float
    slo_attainment: Optional[float]


@dataclass
class RetuneImpact:
    """Cost/latency around one resolved rollout (promote or rollback).

    ``before`` covers completions between the previous rollout resolution
    (or run start) and this one; ``after`` covers completions until the next
    resolution (or run end).
    """

    time: float
    kind: str  # promote | rollback
    version: Optional[int]
    before_completed: int
    before_mean_cost: float
    before_p99_seconds: float
    after_completed: int
    after_mean_cost: float
    after_p99_seconds: float


@dataclass
class AdaptiveComparison:
    """Adaptive vs static (vs oracle) results of one drift scenario."""

    spec: DriftScenarioSpec
    adaptive: ServingReport
    static: ServingReport
    adaptive_phases: List[PhaseStats]
    static_phases: List[PhaseStats]
    #: Cost/request and p99 before/after each resolved rollout.
    retune_impacts: List[RetuneImpact] = field(default_factory=list)
    #: Expected per-request cost of an oracle that re-tunes for free at every
    #: phase boundary with the phase's true mix (uncontended reference).
    oracle_cost_per_request: Optional[float] = None
    oracle_phase_costs: Dict[str, float] = field(default_factory=dict)

    # -- headline numbers ---------------------------------------------------------
    @property
    def adaptive_cost(self) -> float:
        return self.adaptive.metrics.mean_cost_per_request

    @property
    def static_cost(self) -> float:
        return self.static.metrics.mean_cost_per_request

    @property
    def adaptive_p99(self) -> float:
        return self.adaptive.metrics.latency_p99_seconds

    @property
    def static_p99(self) -> float:
        return self.static.metrics.latency_p99_seconds

    @property
    def wins_cost(self) -> bool:
        """Adaptive strictly cheaper per request than static."""
        return self.adaptive_cost < self.static_cost

    @property
    def wins_p99(self) -> bool:
        """Adaptive strictly better p99 than static."""
        return self.adaptive_p99 < self.static_p99

    @property
    def wins(self) -> bool:
        """The acceptance notion: strictly better on cost/request or p99."""
        return self.wins_cost or self.wins_p99

    def regret_per_request(self, which: str = "adaptive") -> Optional[float]:
        """Cost-per-request gap to the phase-oracle (``adaptive``/``static``)."""
        if self.oracle_cost_per_request is None:
            return None
        cost = self.adaptive_cost if which == "adaptive" else self.static_cost
        return cost - self.oracle_cost_per_request


@dataclass
class DriftSuiteReport:
    """Every scenario's comparison from one suite run."""

    seed: int
    scenarios: List[DriftScenarioSpec]
    comparisons: Dict[str, AdaptiveComparison]

    @property
    def win_count(self) -> int:
        """Scenarios where adaptive strictly beat static on cost or p99."""
        return sum(1 for c in self.comparisons.values() if c.wins)


def phase_mixture(workload, phase: TrafficPhase) -> List[Tuple[float, float]]:
    """The ``(scale, weight)`` mixture a phase's profile describes."""
    classes = workload.input_classes
    if not classes:
        return [(workload.default_input_scale, 1.0)]
    weights = phase.profile.class_weights
    raw = [
        (c.scale, 1.0 if weights is None else float(weights.get(c.name, 0.0)))
        for c in classes
    ]
    total = sum(w for _, w in raw)
    if total <= 0:
        raise ValueError(f"phase {phase.name!r} weights select no input class")
    merged: Dict[float, float] = {}
    for scale, weight in raw:
        if weight > 0:
            merged[scale] = merged.get(scale, 0.0) + weight / total
    return sorted(merged.items())


def _tune_on_mixture(
    workload, mixture: Sequence[Tuple[float, float]], seed: int, method: str = "AARC"
) -> Optional[Tuple[WorkflowConfiguration, float]]:
    """Offline-tune for one traffic mixture: ``(configuration, cost)`` or None.

    The single source of truth for the offline-tuning recipe — both the
    scenarios' initial configurations and the per-phase oracle reference go
    through it, so they can never silently diverge.
    """
    backend = build_backend(workload.build_executor(), name="vectorized", cache=True)
    objective = MixtureObjective(
        workflow=workload.workflow, slo=workload.slo, mixture=mixture, backend=backend
    )
    searcher = make_searcher(method, workload, ExperimentSettings(seed=seed))
    result = searcher.search(objective)
    if not result.found_feasible:
        return None
    return result.best_configuration, objective.evaluate(result.best_configuration).cost


def _phase_stats(
    report: ServingReport,
    bounds: Sequence[Tuple[TrafficPhase, float, float]],
) -> List[PhaseStats]:
    """Split one run's outcomes by the phase their request *arrived* in."""
    slo_limit = report.metrics.slo_limit_seconds
    stats: List[PhaseStats] = []
    for phase, start, end in bounds:
        outcomes = [
            o
            for o in report.result.outcomes
            if start <= o.request.arrival_time < end
        ]
        latencies = [o.latency_seconds for o in outcomes]
        completed = len(outcomes)
        stats.append(
            PhaseStats(
                name=phase.name,
                start_seconds=start,
                end_seconds=end,
                completed=completed,
                mean_cost=(
                    sum(o.cost for o in outcomes) / completed
                    if completed
                    else float("nan")
                ),
                latency_p99_seconds=percentile(latencies, 99),
                slo_attainment=(
                    sum(
                        1
                        for o in outcomes
                        if o.succeeded and o.latency_seconds <= slo_limit
                    )
                    / completed
                    if slo_limit is not None and completed
                    else None
                ),
            )
        )
    return stats


def _retune_impacts(report: ServingReport) -> List[RetuneImpact]:
    """Cost/request and p99 in the windows around each resolved rollout."""
    control = report.control
    if control is None:
        return []
    resolutions = [
        event for event in control.events if event.kind in {"promote", "rollback"}
    ]
    if not resolutions:
        return []
    boundaries = (
        [0.0] + [event.time for event in resolutions] + [float("inf")]
    )
    outcomes = report.result.outcomes

    def window(start: float, end: float):
        chosen = [o for o in outcomes if start < o.completion_time <= end]
        latencies = [o.latency_seconds for o in chosen]
        mean_cost = (
            sum(o.cost for o in chosen) / len(chosen) if chosen else float("nan")
        )
        return len(chosen), mean_cost, percentile(latencies, 99)

    impacts: List[RetuneImpact] = []
    for position, event in enumerate(resolutions):
        before = window(boundaries[position], event.time)
        after = window(event.time, boundaries[position + 2])
        impacts.append(
            RetuneImpact(
                time=event.time,
                kind=event.kind,
                version=event.version,
                before_completed=before[0],
                before_mean_cost=before[1],
                before_p99_seconds=before[2],
                after_completed=after[0],
                after_mean_cost=after[1],
                after_p99_seconds=after[2],
            )
        )
    return impacts


def _oracle_costs(
    workload, phases: Sequence[TrafficPhase], phase_stats: Sequence[PhaseStats], seed: int
) -> Tuple[Optional[float], Dict[str, float]]:
    """Per-phase optimal (uncontended) cost/request and its traffic-weighted mean.

    The oracle knows each phase's true mix in advance and re-tunes for free
    at every boundary; its cost is each phase's mixture-optimal expected
    cost weighted by the requests the phase actually completed.  Queueing is
    ignored (the oracle is an uncontended lower reference), so regret
    against it folds both mis-configuration *and* contention effects in.
    """
    per_phase: Dict[str, float] = {}
    by_mixture: Dict[Tuple[Tuple[float, float], ...], Optional[float]] = {}
    total_requests = 0
    total_cost = 0.0
    for phase, stats in zip(phases, phase_stats):
        mixture = phase_mixture(workload, phase)
        key = tuple(mixture)
        if key not in by_mixture:
            # Phases sharing a mixture (e.g. rate-only drift) share one
            # search instead of re-tuning the oracle from scratch per phase.
            tuned = _tune_on_mixture(workload, mixture, seed=seed)
            by_mixture[key] = tuned[1] if tuned is not None else None
        cost = by_mixture[key]
        if cost is None:
            return None, per_phase
        per_phase[phase.name] = cost
        total_requests += stats.completed
        total_cost += cost * stats.completed
    if total_requests == 0:
        return None, per_phase
    return total_cost / total_requests, per_phase


#: Scenario names of the built-in drift suite, in run order.
DRIFT_SCENARIO_NAMES: Tuple[str, ...] = (
    "video-mix-lighten",
    "video-mix-deepen",
    "chatbot-online-tune",
    "chatbot-flash-crowd",
    "chatbot-diurnal-ramp",
)


def build_drift_scenarios(
    seed: int = 717, duration_scale: float = 1.0
) -> List[DriftScenarioSpec]:
    """Build the named drift scenario suite.

    ``duration_scale`` shrinks every phase/duration proportionally for
    faster test runs (relationships between phases are preserved).
    """

    def t(seconds: float) -> float:
        return seconds * duration_scale

    # -- video: input-mix drift (uncontended; the drift is in the inputs) -------
    lighten_phases = (
        TrafficPhase(
            "heavy-mix",
            0.0,
            TrafficProfile(
                arrival="constant",
                rate_rps=0.02,
                class_weights={"light": 0.2, "middle": 0.5, "heavy": 0.3},
            ),
        ),
        TrafficPhase(
            "light-mix",
            t(1500.0),
            TrafficProfile(
                arrival="constant",
                rate_rps=0.02,
                class_weights={"light": 0.8, "middle": 0.2},
            ),
        ),
    )
    deepen_phases = (
        TrafficPhase(
            "light-mix",
            0.0,
            TrafficProfile(
                arrival="constant",
                rate_rps=0.02,
                class_weights={"light": 0.85, "middle": 0.15},
            ),
        ),
        TrafficPhase(
            "middle-mix",
            t(1500.0),
            TrafficProfile(
                arrival="constant",
                rate_rps=0.02,
                class_weights={"light": 0.2, "middle": 0.8},
            ),
        ),
    )
    # A 600 s window turns over fast enough that by the time the mix shift
    # crosses the detection threshold the window is dominated by the new
    # phase; attainment_target 0.9 lets a re-tune stop provisioning for a
    # class whose share has decayed below 10% of the observed mix.
    video_controller = ControllerOptions(
        window_seconds=t(600.0),
        min_window_completions=6,
        min_retune_interval_seconds=t(300.0),
        attainment_target=0.9,
    )

    # -- chatbot: rate drift on a finite cluster (the drift is in the load) -----
    crowd_phases = (
        TrafficPhase(
            "calm", 0.0, TrafficProfile(arrival="constant", rate_rps=0.015)
        ),
        TrafficPhase(
            "crowd", t(900.0), TrafficProfile(arrival="constant", rate_rps=0.08)
        ),
        TrafficPhase(
            "calm-again", t(2100.0), TrafficProfile(arrival="constant", rate_rps=0.015)
        ),
    )
    diurnal_phases = (
        TrafficPhase(
            "night", 0.0, TrafficProfile(arrival="constant", rate_rps=0.01)
        ),
        TrafficPhase(
            "morning", t(900.0), TrafficProfile(arrival="constant", rate_rps=0.03)
        ),
        TrafficPhase(
            "midday", t(1800.0), TrafficProfile(arrival="constant", rate_rps=0.05)
        ),
        TrafficPhase(
            "evening", t(2700.0), TrafficProfile(arrival="constant", rate_rps=0.02)
        ),
    )
    chatbot_controller = ControllerOptions(
        window_seconds=t(600.0),
        min_window_completions=5,
        min_retune_interval_seconds=t(240.0),
        retune_samples=20,
    )

    return [
        DriftScenarioSpec(
            name="video-mix-lighten",
            description=(
                "a heavy-video mix drains away; the heavy-capable config "
                "overpays for the light traffic left behind"
            ),
            workload="video-analysis",
            settings=ServingSettings(
                duration_seconds=t(3600.0),
                seed=seed,
                nodes=0,
                phases=lighten_phases,
                adaptive=True,
                detector="threshold",
                rollout="immediate",
                controller=video_controller,
            ),
            tune_mixture=((0.5, 0.2), (1.0, 0.5), (1.5, 0.3)),
        ),
        DriftScenarioSpec(
            name="video-mix-deepen",
            description=(
                "light-video traffic shifts toward standard inputs; the "
                "light-tuned config grows slow and expensive"
            ),
            workload="video-analysis",
            settings=ServingSettings(
                duration_seconds=t(3600.0),
                seed=seed,
                nodes=0,
                phases=deepen_phases,
                adaptive=True,
                detector="threshold",
                rollout="canary",
                # Low request rates: a lean canary cohort keeps the
                # evaluation from outliving the run.
                rollout_options={
                    "fraction": 0.4,
                    "evaluation_requests": 6,
                    "min_stable": 3,
                },
                controller=video_controller,
            ),
            tune_mixture=((0.5, 0.85), (1.0, 0.15)),
        ),
        DriftScenarioSpec(
            name="chatbot-online-tune",
            description=(
                "a service launched on its over-provisioned base config; the "
                "controller tunes it online from live traffic"
            ),
            workload="chatbot",
            settings=ServingSettings(
                method="base",
                duration_seconds=t(3000.0),
                seed=seed,
                nodes=4,
                phases=(
                    TrafficPhase(
                        "steady",
                        0.0,
                        TrafficProfile(arrival="constant", rate_rps=0.015),
                    ),
                ),
                adaptive=True,
                detector="scheduled",
                detector_options={"interval_seconds": t(600.0)},
                rollout="drain",
                controller=chatbot_controller,
            ),
        ),
        DriftScenarioSpec(
            name="chatbot-flash-crowd",
            description=(
                "a flash crowd overruns the wasteful base config; re-tuning "
                "to a work-efficient config restores serving capacity"
            ),
            workload="chatbot",
            settings=ServingSettings(
                method="base",
                duration_seconds=t(3600.0),
                seed=seed,
                nodes=4,
                phases=crowd_phases,
                adaptive=True,
                detector="threshold",
                detector_options={"relative_threshold": 0.5},
                rollout="immediate",
                controller=chatbot_controller,
            ),
        ),
        DriftScenarioSpec(
            name="chatbot-diurnal-ramp",
            description=(
                "a day-cycle ramp: load climbs through morning to midday and "
                "relaxes in the evening"
            ),
            workload="chatbot",
            settings=ServingSettings(
                method="base",
                duration_seconds=t(3600.0),
                seed=seed,
                nodes=4,
                phases=diurnal_phases,
                adaptive=True,
                detector="threshold",
                detector_options={"relative_threshold": 0.5},
                rollout="canary",
                rollout_options={
                    "fraction": 0.4,
                    "evaluation_requests": 8,
                    "min_stable": 3,
                },
                controller=chatbot_controller,
            ),
        ),
    ]


def run_drift_scenario(
    spec: DriftScenarioSpec, with_oracle: bool = True
) -> AdaptiveComparison:
    """Run one scenario's adaptive and static twins and compare them."""
    workload = get_workload(spec.workload)
    settings = spec.settings
    if spec.tune_mixture is not None:
        tuned = _tune_on_mixture(workload, spec.tune_mixture, seed=settings.seed)
        if tuned is None:
            raise RuntimeError(
                f"no feasible configuration for mixture {list(spec.tune_mixture)} "
                f"on {workload.name} (tuning {spec.name!r}'s initial configuration)"
            )
        settings = dataclasses.replace(settings, configuration=tuned[0])
    adaptive_report = run_serving_experiment(spec.workload, settings)
    static_report = run_serving_experiment(
        spec.workload, dataclasses.replace(settings, adaptive=False)
    )
    phases = list(settings.phases or ())
    bounds = (
        DriftingTrafficModel(phases).phase_bounds(settings.duration_seconds)
        if phases
        else []
    )
    adaptive_phases = _phase_stats(adaptive_report, bounds)
    static_phases = _phase_stats(static_report, bounds)
    oracle_cost, oracle_by_phase = (
        _oracle_costs(workload, phases, adaptive_phases, settings.seed)
        if with_oracle
        else (None, {})
    )
    return AdaptiveComparison(
        spec=spec,
        adaptive=adaptive_report,
        static=static_report,
        adaptive_phases=adaptive_phases,
        static_phases=static_phases,
        retune_impacts=_retune_impacts(adaptive_report),
        oracle_cost_per_request=oracle_cost,
        oracle_phase_costs=oracle_by_phase,
    )


def run_drift_suite(
    seed: int = 717,
    scenarios: Optional[Sequence[DriftScenarioSpec]] = None,
    duration_scale: float = 1.0,
    with_oracle: bool = True,
) -> DriftSuiteReport:
    """Run the whole drift suite; deterministic end to end under one seed."""
    specs = list(
        scenarios
        if scenarios is not None
        else build_drift_scenarios(seed=seed, duration_scale=duration_scale)
    )
    comparisons = {
        spec.name: run_drift_scenario(spec, with_oracle=with_oracle)
        for spec in specs
    }
    return DriftSuiteReport(seed=seed, scenarios=specs, comparisons=comparisons)

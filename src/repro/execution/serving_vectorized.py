"""Batched serving engine: array-cohort settlement of request streams.

The scalar :class:`~repro.execution.serving.ServingSimulator` walks one
event-loop closure per arrival, function start, container release and
completion — flexible, but it caps the drift/fault/adaptive scenario suites
at modest request counts.  The :class:`BatchedServingSimulator` here serves
the same streams from array operations while staying **bit-identical** to
the scalar engine under fixed seeds (the differential tier in
``tests/differential/test_engine_differential.py`` is the arbiter):

* Requests are grouped into **cohorts** sharing a service-trace template —
  one ``(configuration, input_scale)`` evaluation per template instead of
  one per request — and each template's function timeline is settled for
  the whole cohort in NumPy passes (per-function start/finish arrays,
  elementwise-max joins, cumulative-sum concurrency integration).
* The warm-pool overlay replays the :class:`ContainerPool` contract per
  function with a sorted sweep: the common single-configuration bucket
  reduces to an exact LIFO deque (most-recent warm match, strict-boundary
  expiry, oldest-first capacity eviction), and mixed-configuration buckets
  drive a real replica pool so input-aware cohorts keep exact semantics.
* Runs that contend for a finite cluster replay the scalar event loop
  *exactly* on the :class:`~repro.execution.events_calendar.EventCalendar`
  — same event set, same insertion-order tie-breaking — just without the
  per-event closure allocation and per-request re-evaluation.
* Faulty, noisy, adaptive-controller and autoscaled runs **fall back** to
  the scalar engine unchanged, so ``repro scenarios`` semantics are
  untouched (the differential tier still compares them byte-for-byte).

Floating-point equality is engineered, not hoped for: sequential Python
accumulation is replicated with ``np.cumsum`` (bit-identical to a running
sum), scalar expression shapes like ``start + penalty + runtime`` keep
their association, and the rare request with three or more cold starts is
re-accumulated in the scalar engine's event order.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.execution.backend import EvaluationBackend
from repro.execution.cluster import Cluster
from repro.execution.container import ContainerPool
from repro.execution.events import RequestArrival
from repro.execution.events_calendar import EventCalendar
from repro.execution.executor import WorkflowExecutor
from repro.execution.faults import FaultPlan
from repro.execution.protection import ProtectionPolicy
from repro.execution.serving import (
    ServedRequest,
    ServingOptions,
    ServingResult,
    ServingSimulator,
    _ClusterLedger,
)
from repro.execution.trace import ExecutionStatus
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = [
    "SERVING_ENGINE_NAMES",
    "BatchedServingSimulator",
    "build_serving_engine",
]

#: Engine names accepted by :func:`build_serving_engine` (and the CLI).
SERVING_ENGINE_NAMES: Tuple[str, ...] = ("event", "batched")

# Event kinds on the calendar (arrivals ride the pre-sorted backbone lane).
_ARRIVAL = 0
_START = 1
_RELEASE = 2
_COMPLETE = 3


class _Template:
    """Per-(configuration, input-scale) service-trace template.

    Everything the scalar engine derives per request from the evaluated
    trace — topological function order, per-function runtimes/configs/
    predecessor sets, cold-start penalty and its billing delta — resolved
    once per cohort.  Function identity is a dense index into ``names``
    (topologically ordered, filtered to the trace's records), matching the
    scalar engine's ``waiting`` dict iteration order exactly.
    """

    __slots__ = (
        "trace",
        "names",
        "index",
        "statuses",
        "runtimes",
        "configs",
        "penalties",
        "deltas",
        "preds",
        "succs",
        "waiting0",
        "roots",
        "base_cost",
        "succeeded",
    )

    def __init__(self, simulator: ServingSimulator, trace) -> None:
        records = trace.records
        names = [name for name in simulator._topo_order if name in records]
        index = {name: position for position, name in enumerate(names)}
        preds = [
            [index[p] for p in simulator._predecessors[name] if p in records]
            for name in names
        ]
        succs: List[List[int]] = [[] for _ in names]
        for position, plist in enumerate(preds):
            for p in plist:
                succs[p].append(position)
        pricing = simulator.executor.pricing
        self.trace = trace
        self.names = names
        self.index = index
        self.preds = preds
        self.succs = succs
        self.waiting0 = [len(plist) for plist in preds]
        self.roots = [k for k, w in enumerate(self.waiting0) if w == 0]
        self.statuses = [records[name].status for name in names]
        self.runtimes = [records[name].runtime_seconds for name in names]
        self.configs = [records[name].config for name in names]
        self.penalties = [simulator._cold_latency[name] for name in names]
        # Cold-start billing is deterministic per (runtime, penalty, config):
        # precompute the scalar engine's invocation-cost difference once.
        self.deltas = [
            pricing.invocation_cost(runtime + penalty, config)
            - pricing.invocation_cost(runtime, config)
            for runtime, penalty, config in zip(
                self.runtimes, self.penalties, self.configs
            )
        ]
        self.base_cost = trace.total_cost
        self.succeeded = trace.succeeded


class BatchedServingSimulator:
    """Array-cohort serving engine, bit-identical to the scalar loop.

    Accepts the same construction arguments as :class:`ServingSimulator`
    and wraps one internally — both for the fallback paths (faults, noise,
    adaptive control, autoscaling) and to reuse its precomputed topology
    and metrics summarisation.
    """

    def __init__(
        self,
        workflow: Workflow,
        executor: WorkflowExecutor,
        backend: Optional[EvaluationBackend] = None,
        cluster: Optional[Cluster] = None,
        container_pool: Optional[ContainerPool] = None,
        slo: Optional[SLO] = None,
        options: Optional[ServingOptions] = None,
        faults: Optional[FaultPlan] = None,
        protection: Optional[ProtectionPolicy] = None,
    ) -> None:
        self._scalar = ServingSimulator(
            workflow=workflow,
            executor=executor,
            backend=backend,
            cluster=cluster,
            container_pool=container_pool,
            slo=slo,
            options=options,
            faults=faults,
            protection=protection,
        )
        scalar = self._scalar
        self.workflow = scalar.workflow
        self.executor = scalar.executor
        self.backend = scalar.backend
        self.cluster = scalar.cluster
        self.container_pool = scalar.container_pool
        self.slo = scalar.slo
        self.options = scalar.options
        self.faults = scalar.faults
        self.protection = scalar.protection

    # -- template resolution ----------------------------------------------------
    def _build_templates(
        self,
        request_list: List[RequestArrival],
        configs: List[WorkflowConfiguration],
    ) -> Tuple[List[_Template], List[int]]:
        """Group requests into trace cohorts, evaluating once per template.

        Keyed by configuration identity + exact input scale; the ``configs``
        list keeps every configuration object alive, so object ids cannot be
        recycled mid-run.  Templates are evaluated in first-arrival order —
        the same order a memoizing backend sees misses from the scalar run.
        """
        scalar = self._scalar
        templates: List[_Template] = []
        lookup: Dict[Tuple[int, float], int] = {}
        template_of = [0] * len(request_list)
        for i, request in enumerate(request_list):
            key = (id(configs[i]), request.input_scale)
            t = lookup.get(key)
            if t is None:
                trace = scalar.backend.evaluate(
                    scalar.workflow,
                    configs[i],
                    input_scale=request.input_scale,
                    rng=None,
                )
                t = len(templates)
                templates.append(_Template(scalar, trace))
                lookup[key] = t
            template_of[i] = t
        return templates, template_of

    # -- entry point -------------------------------------------------------------
    def run(
        self,
        requests: Iterable[RequestArrival],
        configuration_for: Callable[[RequestArrival], WorkflowConfiguration],
        rng: Optional[RngStream] = None,
        duration_seconds: Optional[float] = None,
        fault_rng: Optional[RngStream] = None,
        controller=None,
    ) -> ServingResult:
        """Serve the stream; identical signature and results to the scalar run.

        Faulty, noisy, adaptive, autoscaled and *protected* runs route to
        the scalar engine per request — their per-event branching defeats
        cohorting, and the contract is that those cohorts still match
        byte-for-byte.  The delegation happens before any dispatcher side
        effect (``configuration_for`` is not called for a delegated run),
        and the returned result records why in ``fallback_reason``.
        """
        scalar = self._scalar
        plan = scalar.faults
        policy = scalar.protection
        reason = ""
        if plan is not None and not plan.is_empty:
            reason = "faults"
        elif policy is not None and not policy.is_empty:
            reason = "protection"
        elif rng is not None:
            reason = "noise"
        elif controller is not None:
            reason = "adaptive"
        elif scalar.options.autoscale:
            reason = "autoscale"
        if reason:
            return self._delegate(
                reason,
                requests,
                configuration_for,
                rng=rng,
                duration_seconds=duration_seconds,
                fault_rng=fault_rng,
                controller=controller,
            )
        request_list = list(requests)
        times = [r.arrival_time for r in request_list]
        sorted_ok = all(b >= a for a, b in zip(times, times[1:]))
        pool_warmed = scalar.options.simulate_cold_starts and any(
            scalar.container_pool._containers.values()
        )
        # The cohort sweep assumes a pristine pool (fresh per experiment);
        # unsorted streams would break the backbone lane.  Both are exotic —
        # serve them on the reference engine instead of approximating.
        if not sorted_ok or (scalar.cluster is None and pool_warmed):
            return self._delegate(
                "unsorted-arrivals" if not sorted_ok else "warm-pool",
                request_list,
                configuration_for,
                duration_seconds=duration_seconds,
            )
        if duration_seconds is None:
            duration_seconds = max(times, default=0.0)
        configs = [configuration_for(r) for r in request_list]
        if scalar.cluster is not None:
            return self._run_calendar(request_list, configs, duration_seconds)
        return self._run_cohort(request_list, configs, duration_seconds)

    def _delegate(
        self,
        reason: str,
        requests: Iterable[RequestArrival],
        configuration_for: Callable[[RequestArrival], WorkflowConfiguration],
        **kwargs,
    ) -> ServingResult:
        """Serve on the scalar reference engine, recording why.

        The notice is logged once per delegated run so a ``--engine
        batched`` invocation never *silently* loses its speedup; the reason
        also lands on the result (and the rendered report) for posterity.
        """
        get_logger(__name__).info(
            "batched engine: delegating run to the scalar engine (%s)", reason
        )
        result = self._scalar.run(requests, configuration_for, **kwargs)
        result.fallback_reason = reason
        return result

    # -- uncontended cohort path -------------------------------------------------
    def _run_cohort(
        self,
        request_list: List[RequestArrival],
        configs: List[WorkflowConfiguration],
        duration_seconds: float,
    ) -> ServingResult:
        """No cluster: every request dispatches at arrival; settle in arrays.

        Function timelines are walked in topological order with one merged
        pool sweep per function name, so the warm-pool state seen by each
        acquisition matches the scalar event sequence (request-level start
        ties across a function are measure-zero under continuous arrival
        processes; the differential tier guards the discrete ones).
        """
        scalar = self._scalar
        n = len(request_list)
        pool = scalar.container_pool if scalar.options.simulate_cold_starts else None
        templates, template_of_list = self._build_templates(request_list, configs)
        template_of = np.asarray(template_of_list, dtype=np.intp)
        arrivals = np.asarray(
            [r.arrival_time for r in request_list], dtype=np.float64
        )
        requests_of = [
            np.nonzero(template_of == t)[0] for t in range(len(templates))
        ]
        arrivals_of = [arrivals[idx] for idx in requests_of]
        finishes: List[List[Optional[np.ndarray]]] = [
            [None] * len(tpl.names) for tpl in templates
        ]
        cold_count = np.zeros(n, dtype=np.int64)
        cold_seconds = np.zeros(n, dtype=np.float64)
        extra_cost = np.zeros(n, dtype=np.float64)
        # (request indices, start times, penalty, delta, topo position) per
        # cold batch — kept for the exact-order re-accumulation below.
        cold_batches: List[Tuple[np.ndarray, np.ndarray, float, float, int]] = []
        pool_cold = pool_warm = pool_evicted = 0

        for topo_position, name in enumerate(scalar._topo_order):
            # One participant per template containing this function, with the
            # cohort's start times (arrival for roots, max of predecessor
            # finishes otherwise — max is order-free, so elementwise works).
            participants = []
            for t, tpl in enumerate(templates):
                k = tpl.index.get(name)
                if k is None or requests_of[t].size == 0:
                    continue
                plist = tpl.preds[k]
                if not plist:
                    starts = arrivals_of[t]
                else:
                    starts = finishes[t][plist[0]]
                    for p in plist[1:]:
                        starts = np.maximum(starts, finishes[t][p])
                if tpl.statuses[k] is ExecutionStatus.SKIPPED:
                    finishes[t][k] = starts
                    continue
                if pool is None:
                    finishes[t][k] = starts + tpl.runtimes[k]
                    continue
                participants.append(
                    (t, k, starts, tpl.statuses[k] is ExecutionStatus.OOM)
                )
            if not participants:
                continue
            cold, evicted, warm, flags_of = self._sweep_function(
                name, templates, participants, finishes, pool
            )
            pool_cold += cold
            pool_evicted += evicted
            pool_warm += warm
            for (t, k, starts, _), flags in zip(participants, flags_of):
                if flags.any():
                    indices = requests_of[t][flags]
                    penalty = templates[t].penalties[k]
                    delta = templates[t].deltas[k]
                    # One event per request per function: fancy-index adds
                    # are duplicate-free (2-term float sums are commutative;
                    # 3+ cold requests are re-accumulated in event order).
                    cold_count[indices] += 1
                    cold_seconds[indices] += penalty
                    extra_cost[indices] += delta
                    cold_batches.append(
                        (indices, starts[flags], penalty, delta, topo_position)
                    )

        self._fix_multi_cold(cold_count, cold_seconds, extra_cost, cold_batches)

        completion = arrivals.copy()
        for t, tpl in enumerate(templates):
            idx = requests_of[t]
            if idx.size == 0 or not tpl.names:
                continue
            cohort_completion = arrivals_of[t]
            for k in range(len(tpl.names)):
                cohort_completion = np.maximum(cohort_completion, finishes[t][k])
            completion[idx] = cohort_completion

        base_cost = np.asarray(
            [tpl.base_cost for tpl in templates], dtype=np.float64
        )[template_of]
        costs = base_cost + extra_cost

        completion_list = completion.tolist()
        cost_list = costs.tolist()
        cold_count_list = cold_count.tolist()
        cold_seconds_list = cold_seconds.tolist()
        outcomes: List[ServedRequest] = []
        append = outcomes.append
        for i, request in enumerate(request_list):
            tpl = templates[template_of_list[i]]
            append(
                ServedRequest(
                    i,
                    request,
                    configs[i],
                    request.arrival_time,
                    completion_list[i],
                    cost_list[i],
                    cold_count_list[i],
                    cold_seconds_list[i],
                    tpl.succeeded,
                    tpl.trace,
                )
            )

        if pool is not None:
            stats = pool._stats
            stats.cold_starts += pool_cold
            stats.warm_hits += pool_warm
            stats.evictions += pool_evicted

        ledger = self._replay_ledger(arrivals, completion)
        metrics = scalar._summarize(outcomes, [], ledger, duration_seconds, n)
        return ServingResult(outcomes=outcomes, rejected=[], metrics=metrics)

    def _sweep_function(
        self,
        name: str,
        templates: List[_Template],
        participants: List[Tuple[int, int, np.ndarray, bool]],
        finishes: List[List[Optional[np.ndarray]]],
        pool: ContainerPool,
    ) -> Tuple[int, int, int, List[np.ndarray]]:
        """Replay one function's pool bucket over all cohorts' start events.

        Stores the per-participant finish arrays in ``finishes`` and
        returns ``(cold_starts, evictions, warm_hits, cold_flags)`` with
        one boolean flag array per participant.  Single-configuration
        buckets (the common case) reduce to an exact LIFO deque of
        last-used times; mixed buckets drive a replica
        :class:`ContainerPool`, keeping the MRU/expiry/capacity contract by
        construction.
        """
        start_arrays = [p[2] for p in participants]
        sizes = [s.size for s in start_arrays]
        merged = (
            np.concatenate(start_arrays) if len(start_arrays) > 1 else start_arrays[0]
        )
        if len(participants) > 1:
            owner = np.repeat(np.arange(len(participants)), sizes)
        else:
            owner = np.zeros(merged.size, dtype=np.intp)
        order = np.argsort(merged, kind="stable")
        start_sorted = merged[order].tolist()
        owner_sorted = owner[order].tolist()
        runtime_of = [templates[t].runtimes[k] for t, k, _, _ in participants]
        config_of = [templates[t].configs[k] for t, k, _, _ in participants]
        oom_of = [oom for _, _, _, oom in participants]
        penalty = templates[participants[0][0]].penalties[participants[0][1]]
        total = merged.size
        cold_flags = [False] * total
        end_sorted = [0.0] * total
        keep_alive = pool.keep_alive_seconds
        capacity = pool.max_containers_per_function
        cold = warm = evicted = 0

        if len(set(config_of)) == 1:
            # Exact single-bucket replay: ``idle`` holds last-used times in
            # ascending order.  Releases flush before any acquisition at the
            # same instant; expiry uses the pool's own two-sided predicate
            # (heap-popped at ``last + keep_alive <= t``, evicted only when
            # ``t - last > keep_alive``), so boundary containers stay warm
            # and rounding zombies linger exactly as in ContainerPool.
            idle: deque = deque()
            pending: List[float] = []
            heappush, heappop = heapq.heappush, heapq.heappop
            for j in range(total):
                now = start_sorted[j]
                while pending and pending[0] <= now:
                    idle.append(heappop(pending))
                    if len(idle) > capacity:
                        idle.popleft()
                        evicted += 1
                while idle:
                    last = idle[0]
                    if last + keep_alive <= now and now - last > keep_alive:
                        idle.popleft()
                        evicted += 1
                    else:
                        break
                p = owner_sorted[j]
                if idle and now - idle[-1] <= keep_alive:
                    idle.pop()
                    warm += 1
                    end = now + runtime_of[p]
                else:
                    cold_flags[j] = True
                    cold += 1
                    end = (now + penalty) + runtime_of[p]
                end_sorted[j] = end
                if not oom_of[p]:
                    heappush(pending, end)
        else:
            # Mixed configurations (input-aware cohorts): drive a real pool
            # replica so exact-config matching keeps ContainerPool semantics.
            replica = ContainerPool(keep_alive, capacity)
            tie = itertools.count()
            releases: List[Tuple[float, int, object]] = []
            heappush, heappop = heapq.heappush, heapq.heappop
            for j in range(total):
                now = start_sorted[j]
                while releases and releases[0][0] <= now:
                    finish_time, _, container = heappop(releases)
                    replica.release(container, finish_time)
                p = owner_sorted[j]
                container, is_cold = replica.acquire(name, config_of[p], now)
                if is_cold:
                    cold_flags[j] = True
                    end = (now + penalty) + runtime_of[p]
                else:
                    end = now + runtime_of[p]
                end_sorted[j] = end
                if not oom_of[p]:
                    heappush(releases, (end, next(tie), container))
            cold = replica.cold_starts
            warm = replica.warm_hits
            evicted = replica.evictions

        ends = np.empty(total, dtype=np.float64)
        ends[order] = np.asarray(end_sorted, dtype=np.float64)
        flags = np.zeros(total, dtype=bool)
        flags[order] = np.asarray(cold_flags, dtype=bool)
        flags_of: List[np.ndarray] = []
        offset = 0
        for (t, k, _, _), size in zip(participants, sizes):
            finishes[t][k] = ends[offset : offset + size]
            flags_of.append(flags[offset : offset + size])
            offset += size
        return cold, evicted, warm, flags_of

    @staticmethod
    def _fix_multi_cold(
        cold_count: np.ndarray,
        cold_seconds: np.ndarray,
        extra_cost: np.ndarray,
        cold_batches: List[Tuple[np.ndarray, np.ndarray, float, float, int]],
    ) -> None:
        """Re-accumulate 3+-cold-start requests in scalar event order.

        Two-term float sums are order-free (commutativity), but three or
        more additions depend on association — replay those requests'
        penalties and billing deltas sorted by (start time, topo position),
        the order the scalar engine's start events fire in.
        """
        multi = np.nonzero(cold_count >= 3)[0]
        if not multi.size:
            return
        wanted = set(multi.tolist())
        events: Dict[int, List[Tuple[float, int, float, float]]] = {
            r: [] for r in wanted
        }
        for indices, starts, penalty, delta, topo_position in cold_batches:
            for r, s in zip(indices.tolist(), starts.tolist()):
                if r in wanted:
                    events[r].append((s, topo_position, penalty, delta))
        for r, request_events in events.items():
            request_events.sort()
            seconds = 0.0
            cost = 0.0
            for _, _, penalty, delta in request_events:
                seconds += penalty
                cost += delta
            cold_seconds[r] = seconds
            extra_cost[r] = cost

    @staticmethod
    def _replay_ledger(
        arrivals: np.ndarray, completion: np.ndarray
    ) -> _ClusterLedger:
        """Rebuild the scalar ledger's concurrency integral from arrays.

        ``np.cumsum`` is bit-identical to a sequential running sum, the
        scalar's skipped zero-``dt`` advances add exact ``0.0`` terms, and
        arrivals win completion ties (stable sort, arrivals concatenated
        first) exactly as their lower event sequence numbers do.
        """
        ledger = _ClusterLedger(None)
        n = arrivals.size
        if n == 0:
            return ledger
        times = np.concatenate((arrivals, completion))
        deltas = np.concatenate(
            (np.ones(n, dtype=np.float64), -np.ones(n, dtype=np.float64))
        )
        order = np.argsort(times, kind="stable")
        times_sorted = times[order]
        deltas_sorted = deltas[order]
        active_after = np.cumsum(deltas_sorted)
        dt = np.empty(times_sorted.size, dtype=np.float64)
        dt[0] = times_sorted[0] - 0.0
        dt[1:] = times_sorted[1:] - times_sorted[:-1]
        terms = (active_after - deltas_sorted) * dt
        ledger._concurrency_area = float(np.cumsum(terms)[-1])
        ledger._last_time = float(times_sorted[-1])
        ledger.peak_active = int(active_after.max())
        return ledger

    # -- contended calendar path -------------------------------------------------
    def _run_calendar(
        self,
        request_list: List[RequestArrival],
        configs: List[WorkflowConfiguration],
        duration_seconds: float,
    ) -> ServingResult:
        """Finite cluster: exact event replay on the two-lane calendar.

        The event set, handler order and every push mirror the scalar
        ``run``/``_launch`` pair one-for-one (arrivals on the backbone own
        seqs ``0..n-1``; dynamic pushes continue in the scalar's schedule
        order), so tie-breaking is identical — only the closure allocation
        and per-request backend evaluation are gone.
        """
        scalar = self._scalar
        n = len(request_list)
        pool = scalar.container_pool if scalar.options.simulate_cold_starts else None
        queue_capacity = scalar.options.queue_capacity
        templates, template_of = self._build_templates(request_list, configs)
        ledger = _ClusterLedger(scalar.cluster)
        queue: deque = deque()
        outcomes: List[ServedRequest] = []
        rejected: List[RequestArrival] = []
        calendar = EventCalendar(
            [r.arrival_time for r in request_list], _ARRIVAL
        )
        release_slots: List[Tuple[object, float]] = []
        # Per-request launch state, indexed by request.
        dispatch_at = [0.0] * n
        completion_at = [0.0] * n
        colds = [0] * n
        cold_secs = [0.0] * n
        extras = [0.0] * n
        finish_of: List[Optional[List[float]]] = [None] * n
        waiting_of: List[Optional[List[int]]] = [None] * n
        remaining = [0] * n

        def launch(i: int, dispatch_time: float) -> None:
            tpl = templates[template_of[i]]
            dispatch_at[i] = dispatch_time
            completion_at[i] = dispatch_time
            if not tpl.roots:
                calendar.push(dispatch_time, _COMPLETE, i)
                return
            finish_of[i] = [0.0] * len(tpl.names)
            waiting_of[i] = tpl.waiting0.copy()
            remaining[i] = len(tpl.names)
            for k in tpl.roots:
                calendar.push(dispatch_time, _START, i, k)

        def try_dispatch() -> None:
            while queue:
                i = queue[0]
                if not ledger.try_reserve(i, configs[i], calendar.now):
                    if ledger.active == 0 and not ledger.has_down_nodes:
                        queue.popleft()
                        rejected.append(request_list[i])
                        continue
                    break
                queue.popleft()
                launch(i, calendar.now)

        while calendar:
            now, _, kind, a, b = calendar.pop()
            if kind == _START:
                tpl = templates[template_of[a]]
                status = tpl.statuses[b]
                if status is ExecutionStatus.SKIPPED:
                    end = now
                else:
                    penalty = 0.0
                    container = None
                    if pool is not None:
                        container, is_cold = pool.acquire(
                            tpl.names[b], tpl.configs[b], now
                        )
                        if is_cold:
                            penalty = tpl.penalties[b]
                            colds[a] += 1
                            cold_secs[a] += penalty
                    end = now + penalty + tpl.runtimes[b]
                    if container is not None and status is not ExecutionStatus.OOM:
                        # OOM kills destroy the container: never released.
                        calendar.push(end, _RELEASE, len(release_slots))
                        release_slots.append((container, end))
                    if penalty > 0.0:
                        extras[a] += tpl.deltas[b]
                finish = finish_of[a]
                finish[b] = end
                if end > completion_at[a]:
                    completion_at[a] = end
                remaining[a] -= 1
                if remaining[a] == 0:
                    calendar.push(completion_at[a], _COMPLETE, a)
                else:
                    waiting = waiting_of[a]
                    for s in tpl.succs[b]:
                        waiting[s] -= 1
                        if waiting[s] == 0:
                            plist = tpl.preds[s]
                            start = finish[plist[0]]
                            for p in plist[1:]:
                                value = finish[p]
                                if value > start:
                                    start = value
                            calendar.push(start, _START, a, s)
            elif kind == _RELEASE:
                container, finish_time = release_slots[a]
                pool.release(container, finish_time)
            elif kind == _COMPLETE:
                tpl = templates[template_of[a]]
                outcome = ServedRequest(
                    a,
                    request_list[a],
                    configs[a],
                    dispatch_at[a],
                    completion_at[a],
                    tpl.base_cost + extras[a],
                    colds[a],
                    cold_secs[a],
                    tpl.succeeded,
                    tpl.trace,
                )
                ledger.release(a, now)
                outcomes.append(outcome)
                try_dispatch()
            else:  # arrival
                queue.append(a)
                try_dispatch()
                if queue_capacity is not None and len(queue) > queue_capacity:
                    dropped = queue.pop()
                    rejected.append(request_list[dropped])

        ledger.advance(calendar.now)
        outcomes.sort(key=lambda o: o.index)
        metrics = scalar._summarize(
            outcomes, rejected, ledger, duration_seconds, n
        )
        return ServingResult(outcomes=outcomes, rejected=rejected, metrics=metrics)


def build_serving_engine(name: str = "event", **kwargs):
    """Factory over the serving engines, mirroring ``build_backend``.

    ``"event"`` is the scalar reference :class:`ServingSimulator`;
    ``"batched"`` the array-cohort :class:`BatchedServingSimulator`.  Both
    take the same keyword arguments and are bit-identical under fixed
    seeds.
    """
    key = (name or "event").strip().lower()
    if key == "event":
        return ServingSimulator(**kwargs)
    if key == "batched":
        return BatchedServingSimulator(**kwargs)
    raise ValueError(
        f"unknown serving engine {name!r}; expected one of {SERVING_ENGINE_NAMES}"
    )

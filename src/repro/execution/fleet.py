"""Multi-tenant fleet serving on heterogeneous clusters.

One shared cluster, one shared warm pool, many tenants: each
:class:`Tenant` bundles a workload, a traffic model, an SLO, a priority and
a per-function configuration, and the :class:`FleetSimulator` multiplexes
their merged request stream through a pluggable placement policy:

``fair-share``
    Spread: place each container on the least-loaded node (projected
    cpu+memory utilisation), ties broken by imbalance then name.
``bin-packing``
    The existing affinity heuristic: minimise the node's post-placement
    CPU/memory imbalance, ties broken by total utilisation then name —
    packs complementary containers onto fewer nodes.
``priority``
    Fair-share spreading plus priority scheduling: the queue drains in
    priority order, and tenants below the fleet's top priority may not push
    any node beyond ``1 − priority_reserve_fraction`` occupancy, so the
    high-priority tenant always finds reserved headroom.

Tenants interfere through shared-node memory pressure: a request dispatched
onto nodes whose memory utilisation exceeds ``interference_threshold`` runs
every function ``1 + interference_alpha × excess`` slower (and is billed for
the stretched runtime).  Billing is node-priced — each function invocation
pays its runtime cost scaled by the hosting node's ``price_multiplier``, so
spot and Graviton capacity is genuinely cheaper.  Spot nodes are subject to
seed-deterministic eviction schedules that ride the same abort/re-queue
machinery as node failures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.execution.backend import EvaluationBackend, SimulatorBackend
from repro.execution.cluster import Cluster, Node
from repro.execution.container import ContainerPool
from repro.execution.events import EventLoop, RequestArrival
from repro.execution.instances import spot_eviction_schedule
from repro.execution.protection import ProtectionGuard, ProtectionPolicy
from repro.execution.serving import ServedRequest, ServingMetrics, percentile
from repro.execution.trace import ExecutionStatus
from repro.utils.rng import RngStream, derive_seed
from repro.workloads.arrivals import merge_request_streams
from repro.workloads.base import WorkloadSpec
from repro.workflow.resources import WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = [
    "PLACEMENT_POLICIES",
    "Tenant",
    "FleetOptions",
    "TenantResult",
    "FleetResult",
    "FleetSimulator",
]

#: Placement policies the fleet ledger understands.
PLACEMENT_POLICIES = ("fair-share", "bin-packing", "priority")


@dataclass
class Tenant:
    """One workload sharing the fleet: traffic + SLO + priority + config.

    ``traffic`` accepts anything with a ``generate(duration_seconds, rng)``
    method (a :class:`~repro.workloads.arrivals.TrafficModel` or a
    :class:`~repro.workloads.arrivals.DriftingTrafficModel`); when ``None``
    the workload's default profile is used with the optional ``arrival`` /
    ``rate_rps`` overrides.  ``slo`` and ``configuration`` default to the
    workload's own.  Higher ``priority`` means more important.
    """

    name: str
    workload: WorkloadSpec
    priority: int = 0
    arrival: Optional[str] = None
    rate_rps: Optional[float] = None
    traffic: Optional[object] = None
    slo: Optional[SLO] = None
    configuration: Optional[WorkflowConfiguration] = None

    def effective_slo(self) -> SLO:
        return self.slo if self.slo is not None else self.workload.slo

    def effective_configuration(self) -> WorkflowConfiguration:
        if self.configuration is not None:
            return self.configuration
        return self.workload.base_configuration()

    def traffic_source(self) -> object:
        if self.traffic is not None:
            return self.traffic
        return self.workload.traffic_model(arrival=self.arrival, rate_rps=self.rate_rps)


@dataclass(frozen=True)
class FleetOptions:
    """Tunable behaviour of the fleet simulator."""

    placement: str = "fair-share"
    queue_capacity: Optional[int] = None
    simulate_cold_starts: bool = True
    keep_alive_seconds: float = 600.0
    max_warm_per_function: int = 16
    interference_threshold: float = 0.6
    interference_alpha: float = 0.8
    priority_reserve_fraction: float = 0.25
    node_failures_per_hour: float = 0.0
    node_recovery_seconds: float = 60.0
    spot_evictions_per_hour: float = 0.0
    spot_recovery_seconds: float = 90.0

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {', '.join(PLACEMENT_POLICIES)}"
            )
        if not 0 <= self.interference_threshold <= 1:
            raise ValueError("interference_threshold must be in [0, 1]")
        if self.interference_alpha < 0:
            raise ValueError("interference_alpha cannot be negative")
        if not 0 <= self.priority_reserve_fraction < 1:
            raise ValueError("priority_reserve_fraction must be in [0, 1)")


@dataclass
class TenantResult:
    """Everything one tenant's slice of the fleet run produced."""

    tenant: str
    priority: int
    metrics: ServingMetrics
    outcomes: List[ServedRequest]
    rejected: List[RequestArrival]
    rejected_by_cause: Dict[str, int]
    control: Optional[object] = None


@dataclass
class FleetResult:
    """One fleet run: per-tenant results plus fleet-wide accounting."""

    policy: str
    duration_seconds: float
    tenants: Dict[str, TenantResult]
    total_cost: float
    cpu_utilization: Optional[float]
    memory_utilization: Optional[float]
    peak_concurrency: int
    mean_concurrency: float
    node_failures: int
    spot_evictions: int
    interference_stretched: int
    mean_stretch: float
    protection_events: List[Tuple[float, str, str]] = field(default_factory=list)

    def tenant(self, name: str) -> TenantResult:
        return self.tenants[name]

    @property
    def offered(self) -> int:
        return sum(r.metrics.offered for r in self.tenants.values())

    @property
    def completed(self) -> int:
        return sum(r.metrics.completed for r in self.tenants.values())

    @property
    def rejected_total(self) -> int:
        return sum(r.metrics.rejected for r in self.tenants.values())


class _FleetLedger:
    """Capacity reservations on a heterogeneous cluster, policy-scored.

    Generalises the serving ledger: the candidate-node scoring key is chosen
    by the placement policy, the ``priority`` policy additionally withholds
    ``reserve_fraction`` of every node from tenants below the fleet's top
    priority, and utilization always integrates against the *healthy*
    capacity actually available in each window.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: str,
        reserve_fraction: float,
        max_priority: int,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.reserve_fraction = reserve_fraction
        self.max_priority = max_priority
        self.active = 0
        self.peak_active = 0
        self._last_time = 0.0
        self._cpu_area = 0.0
        self._mem_area = 0.0
        self._cap_cpu_area = 0.0
        self._cap_mem_area = 0.0
        self._concurrency_area = 0.0
        self._placements: Dict[int, List[Tuple[Node, str]]] = {}

    def advance(self, now: float) -> None:
        dt = now - self._last_time
        if dt <= 0:
            return
        cap_cpu = 0.0
        cap_mem = 0.0
        for node in self.cluster.nodes:
            if node.healthy:
                cap_cpu += node.vcpu_capacity
                cap_mem += node.memory_capacity_mb
        self._cpu_area += sum(n.vcpu_used for n in self.cluster.nodes) * dt
        self._mem_area += sum(n.memory_used_mb for n in self.cluster.nodes) * dt
        self._cap_cpu_area += cap_cpu * dt
        self._cap_mem_area += cap_mem * dt
        self._concurrency_area += self.active * dt
        self._last_time = now

    def _score(self, node: Node, projected_cpu: float, projected_mem: float) -> Tuple:
        imbalance = round(abs(projected_cpu - projected_mem), 9)
        load = round(projected_cpu + projected_mem, 9)
        if self.policy == "bin-packing":
            return (imbalance, load, node.name)
        return (load, imbalance, node.name)

    def try_reserve(
        self,
        request_id: int,
        configuration: WorkflowConfiguration,
        now: float,
        priority: int = 0,
    ) -> Optional[Dict[str, Node]]:
        """Reserve one container per function; None (fully rolled back) if not placeable.

        Returns the function → node assignment on success so the caller can
        price and interfere per node.
        """
        self.advance(now)
        cap = 1.0
        if self.policy == "priority" and priority < self.max_priority:
            cap = 1.0 - self.reserve_fraction
        placed: List[Tuple[Node, str]] = []
        node_of: Dict[str, Node] = {}
        for function_name, config in configuration.items():
            best: Optional[Node] = None
            best_key: Optional[Tuple] = None
            for node in self.cluster.nodes:
                if not node.can_fit(config):
                    continue
                projected_cpu = (node.vcpu_used + config.vcpu) / node.vcpu_capacity
                projected_mem = (
                    node.memory_used_mb + config.memory_mb
                ) / node.memory_capacity_mb
                if max(projected_cpu, projected_mem) > cap + 1e-9:
                    continue
                key = self._score(node, projected_cpu, projected_mem)
                if best_key is None or key < best_key:
                    best_key = key
                    best = node
            if best is None:
                for node, name in placed:
                    node.remove(name)
                return None
            name = f"{function_name}#{request_id}"
            best.place(name, config)
            placed.append((best, name))
            node_of[function_name] = best
        self._placements[request_id] = placed
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        return node_of

    def release(self, request_id: int, now: float) -> None:
        self.advance(now)
        self.active -= 1
        placed = self._placements.pop(request_id, None)
        if placed is not None:
            for node, name in placed:
                node.remove(name)

    def fail_node(self, node_name: str, now: float) -> List[int]:
        """Down one node; return the aborted request ids (see serving ledger)."""
        self.advance(now)
        node = self.cluster.node(node_name)
        if not node.healthy:
            return []
        affected = sorted(
            request_id
            for request_id, placed in self._placements.items()
            if any(n is node for n, _ in placed)
        )
        for request_id in affected:
            for placed_node, name in self._placements.pop(request_id):
                if placed_node is not node:
                    placed_node.remove(name)
            self.active -= 1
        self.cluster.fail_node(node_name)
        return affected

    def restore_node(self, node_name: str, now: float) -> None:
        self.advance(now)
        self.cluster.restore_node(node_name)

    @property
    def has_down_nodes(self) -> bool:
        return any(not node.healthy for node in self.cluster.nodes)

    def utilization(self) -> Tuple[Optional[float], Optional[float], float]:
        span = self._last_time
        if span <= 0:
            return 0.0, 0.0, 0.0
        mean_concurrency = self._concurrency_area / span
        if self._cap_cpu_area <= 0 or self._cap_mem_area <= 0:
            return 0.0, 0.0, mean_concurrency
        return (
            self._cpu_area / self._cap_cpu_area,
            self._mem_area / self._cap_mem_area,
            mean_concurrency,
        )


class _TenantRuntime:
    """Per-tenant substrate resolved once per simulator lifetime."""

    def __init__(self, tenant: Tenant, backend: Optional[EvaluationBackend]) -> None:
        self.tenant = tenant
        self.executor = tenant.workload.build_executor()
        if self.executor.options.simulate_cold_starts:
            raise ValueError(
                "fleet serving overlays cold starts itself; tenant executors "
                "must not simulate them"
            )
        self.backend = backend if backend is not None else SimulatorBackend(self.executor)
        self.pricing = self.executor.pricing
        self.slo = tenant.effective_slo()
        self.configuration = tenant.effective_configuration()
        workflow = tenant.workload.workflow
        self.workflow = workflow
        self.cold_latency = {
            spec.name: self.executor.cold_start_latency(spec.profile_name)
            for spec in workflow.functions
        }
        self.topo_order: List[str] = list(workflow.topological_order())
        self.predecessors: Dict[str, List[str]] = {
            name: list(workflow.predecessors(name)) for name in self.topo_order
        }
        self.successors: Dict[str, List[str]] = {name: [] for name in self.topo_order}
        for name, preds in self.predecessors.items():
            for pred in preds:
                self.successors[pred].append(name)


class _NamespacedPool:
    """Adapter handing one tenant's controller the shared warm pool.

    The fleet pool keys containers ``tenant/function``; controller rollouts
    retarget by bare function name, so this proxy prefixes the keys before
    delegating.
    """

    def __init__(self, pool: ContainerPool, tenant: str) -> None:
        self._pool = pool
        self._tenant = tenant

    def retarget(self, configuration: Mapping) -> int:
        return self._pool.retarget(
            {f"{self._tenant}/{name}": config for name, config in configuration.items()}
        )


class FleetSimulator:
    """Serve many tenants' merged request stream on one shared cluster.

    Parameters
    ----------
    tenants:
        The fleet, in a deterministic order (ties in arrival time break by
        this order).  Names must be unique.
    cluster:
        Shared (typically heterogeneous) capacity; see
        :mod:`repro.execution.instances` for catalog-built clusters.
    options:
        Placement policy, interference model, spot/failure schedules.
    protection:
        Optional fleet-level :class:`ProtectionPolicy`; the guard sees the
        *tenant name* as the input class, so
        :meth:`ProtectionPolicy.for_tenants` sheds low-priority tenants
        first under queue pressure.
    controllers:
        Optional tenant name → :class:`ReconfigurationController` mapping;
        each controller observes only its tenant's traffic and re-tunes that
        tenant's configuration in place (PR 5 machinery, per tenant).
    """

    def __init__(
        self,
        tenants: Sequence[Tenant],
        cluster: Cluster,
        options: Optional[FleetOptions] = None,
        protection: Optional[ProtectionPolicy] = None,
        controllers: Optional[Mapping[str, object]] = None,
        backends: Optional[Mapping[str, EvaluationBackend]] = None,
    ) -> None:
        if not tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        self.tenants = list(tenants)
        self.cluster = cluster
        self.options = options if options is not None else FleetOptions()
        self.protection = protection
        self.controllers = dict(controllers or {})
        backends = backends or {}
        self.container_pool = ContainerPool(
            keep_alive_seconds=self.options.keep_alive_seconds,
            max_containers_per_function=self.options.max_warm_per_function,
        )
        self._runtimes: Dict[str, _TenantRuntime] = {
            tenant.name: _TenantRuntime(tenant, backends.get(tenant.name))
            for tenant in self.tenants
        }

    # -- one request's replay ------------------------------------------------------
    def _launch(
        self,
        loop: EventLoop,
        runtime: _TenantRuntime,
        index: int,
        request: RequestArrival,
        configuration: WorkflowConfiguration,
        dispatch_time: float,
        stretch: float,
        node_of: Dict[str, Node],
        carry: Dict[str, float],
        rng: Optional[RngStream],
        on_complete: Callable[[ServedRequest], None],
        register_abort: Callable[[int, Callable[[float], None]], None],
    ) -> None:
        """Replay one tenant request with node pricing and interference.

        Mirrors the serving layer's clean replay, with three fleet twists:
        every runtime is stretched by the dispatch-time interference factor,
        every invocation is billed at its hosting node's price multiplier,
        and the whole replay can be aborted (node failure / spot eviction) —
        running containers are killed, billed work is carried as waste, and
        the caller re-queues the request.
        """
        tenant = runtime.tenant
        trace = self.backend_evaluate(runtime, configuration, request, rng)
        pool = self.container_pool if self.options.simulate_cold_starts else None
        records = trace.records
        finish: Dict[str, float] = {}
        waiting = {
            name: sum(1 for p in runtime.predecessors[name] if p in records)
            for name in runtime.topo_order
            if name in records
        }
        running: Dict[str, object] = {}
        state = {
            "remaining": len(waiting),
            "completion": dispatch_time,
            "cold_count": 0,
            "cold_seconds": 0.0,
            "billed": 0.0,
            "dead": False,
        }

        def abort(now: float) -> None:
            state["dead"] = True
            if pool is not None:
                for container in running.values():
                    pool.kill(container)
            running.clear()
            carry["restarts"] += 1
            carry["wasted_seconds"] += max(0.0, now - dispatch_time)
            # Work already billed in the aborted incarnation was real spend.
            carry["extra_cost"] += state["billed"]
            carry["cold_count"] += state["cold_count"]
            carry["cold_seconds"] += state["cold_seconds"]

        register_abort(index, abort)

        def complete() -> None:
            outcome = ServedRequest(
                index=index,
                request=request,
                configuration=configuration,
                dispatch_time=dispatch_time,
                completion_time=state["completion"],
                cost=state["billed"] + carry["extra_cost"],
                cold_start_count=state["cold_count"] + int(carry["cold_count"]),
                cold_start_seconds=state["cold_seconds"] + carry["cold_seconds"],
                succeeded=trace.succeeded,
                service_trace=trace,
                restarts=int(carry["restarts"]),
                wasted_seconds=carry["wasted_seconds"],
            )
            on_complete(outcome)

        def finish_function(name: str, end: float) -> None:
            finish[name] = end
            state["completion"] = max(state["completion"], end)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                complete()
                return
            for successor in runtime.successors[name]:
                if successor not in waiting:
                    continue
                waiting[successor] -= 1
                if waiting[successor] == 0:
                    start = max(
                        finish[p] for p in runtime.predecessors[successor] if p in finish
                    )
                    loop.schedule(start, run_function(successor, start))

        def run_function(name: str, start: float) -> Callable[[], None]:
            def fire() -> None:
                if state["dead"]:
                    return
                record = records[name]
                if record.status is ExecutionStatus.SKIPPED:
                    finish_function(name, start)
                    return
                node = node_of.get(name)
                multiplier = node.price_multiplier if node is not None else 1.0
                penalty = 0.0
                container = None
                if pool is not None:
                    container, cold = pool.acquire(
                        f"{tenant.name}/{name}", record.config, start
                    )
                    container.node_name = node.name if node is not None else None
                    if cold:
                        penalty = runtime.cold_latency[name]
                        state["cold_count"] += 1
                        state["cold_seconds"] += penalty
                runtime_seconds = record.runtime_seconds * stretch
                end = start + penalty + runtime_seconds
                cost = (
                    runtime.pricing.invocation_cost(
                        runtime_seconds + penalty, record.config
                    )
                    * multiplier
                )
                if container is not None:
                    running[name] = container

                def settle() -> None:
                    if state["dead"]:
                        return
                    if container is not None:
                        running.pop(name, None)
                        if record.status is not ExecutionStatus.OOM:
                            pool.release(container, end)
                    state["billed"] += cost
                    finish_function(name, end)

                loop.schedule(end, settle)

            return fire

        roots = [name for name, pending in waiting.items() if pending == 0]
        if not roots:
            loop.schedule(dispatch_time, complete)
            return
        for name in roots:
            loop.schedule(dispatch_time, run_function(name, dispatch_time))

    def backend_evaluate(
        self,
        runtime: _TenantRuntime,
        configuration: WorkflowConfiguration,
        request: RequestArrival,
        rng: Optional[RngStream],
    ):
        return runtime.backend.evaluate(
            runtime.workflow,
            configuration,
            input_scale=request.input_scale,
            rng=rng,
        )

    # -- the run -------------------------------------------------------------------
    def run(self, duration_seconds: float, seed: int = 2025) -> FleetResult:
        """Serve every tenant's stream for ``duration_seconds`` at ``seed``."""
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        options = self.options
        rng = RngStream(derive_seed(seed, "fleet"))
        loop = EventLoop()
        max_priority = max(tenant.priority for tenant in self.tenants)
        ledger = _FleetLedger(
            self.cluster,
            options.placement,
            options.priority_reserve_fraction,
            max_priority,
        )
        guard: Optional[ProtectionGuard] = None
        if self.protection is not None and not self.protection.is_empty:
            guard = ProtectionGuard(
                self.protection.with_priorities(
                    {tenant.name: tenant.priority for tenant in self.tenants}
                ),
                function_names=[],
            )

        streams = {
            tenant.name: tenant.traffic_source().generate(
                duration_seconds, rng.child("arrivals", tenant.name)
            )
            for tenant in self.tenants
        }
        merged = merge_request_streams(streams)

        tenant_of: Dict[int, str] = {}
        outcomes: Dict[str, List[ServedRequest]] = {t.name: [] for t in self.tenants}
        rejected: Dict[str, List[RequestArrival]] = {t.name: [] for t in self.tenants}
        causes: Dict[str, Dict[str, int]] = {t.name: {} for t in self.tenants}
        offered: Dict[str, int] = {t.name: 0 for t in self.tenants}
        stretches: List[float] = []
        inflight_aborts: Dict[int, Callable[[float], None]] = {}
        carries: Dict[int, Dict[str, float]] = {}
        node_failures = 0
        spot_evictions = 0

        priority_of = {tenant.name: tenant.priority for tenant in self.tenants}
        runtimes = self._runtimes
        for name, controller in self.controllers.items():
            controller.bind(pool=_NamespacedPool(self.container_pool, name))

        # Queue of (order_key, seq) entries; order_key is -priority under the
        # priority policy (drain important tenants first) and 0 otherwise
        # (pure FIFO by fleet sequence number).
        queue: List[Tuple[int, int]] = []
        entries: Dict[int, Tuple[str, RequestArrival, WorkflowConfiguration]] = {}

        def order_key(tenant_name: str) -> int:
            if options.placement == "priority":
                return -priority_of[tenant_name]
            return 0

        def count_rejection(tenant_name: str, cause: str) -> None:
            bucket = causes[tenant_name]
            bucket[cause] = bucket.get(cause, 0) + 1

        def reject(seq: int, tenant_name: str, request: RequestArrival, cause: str) -> None:
            rejected[tenant_name].append(request)
            count_rejection(tenant_name, cause)
            controller = self.controllers.get(tenant_name)
            if controller is not None:
                controller.observe_rejection(loop.now, seq)

        def finish_request(outcome: ServedRequest) -> None:
            ledger.release(outcome.index, loop.now)
            tenant_name = tenant_of[outcome.index]
            controller = self.controllers.get(tenant_name)
            if controller is not None:
                outcome.config_version = controller.version_of(outcome.index)
            outcomes[tenant_name].append(outcome)
            inflight_aborts.pop(outcome.index, None)
            carries.pop(outcome.index, None)
            entries.pop(outcome.index, None)
            if guard is not None:
                guard.observe_completion(outcome.service_seconds)
            if controller is not None:
                controller.observe_completion(loop.now, outcome)
            try_dispatch()

        def try_dispatch() -> None:
            # Strict in-order admission (queue order, not arrival order):
            # stop at the first request that does not fit so later smaller
            # ones cannot starve it.
            while queue:
                _, seq = queue[0]
                tenant_name, request, configuration = entries[seq]
                node_of = ledger.try_reserve(
                    seq, configuration, loop.now, priority_of[tenant_name]
                )
                if node_of is None:
                    if ledger.active == 0 and not ledger.has_down_nodes:
                        # Fits nowhere even on an idle cluster: drop instead
                        # of deadlocking the queue.
                        heapq.heappop(queue)
                        entries.pop(seq, None)
                        reject(seq, tenant_name, request, "queue-full")
                        continue
                    break
                heapq.heappop(queue)
                if guard is not None:
                    guard.observe_dispatch(loop.now)
                # Interference: dispatching onto memory-pressured nodes runs
                # slower — deterministic, from post-placement utilisation of
                # exactly the nodes hosting this request.
                pressure = max(
                    (node.memory_utilization for node in node_of.values()),
                    default=0.0,
                )
                excess = max(0.0, pressure - options.interference_threshold)
                stretch = 1.0 + options.interference_alpha * excess
                if stretch > 1.0:
                    stretches.append(stretch)
                carry = carries.get(seq)
                if carry is None:
                    carry = {
                        "restarts": 0,
                        "wasted_seconds": 0.0,
                        "extra_cost": 0.0,
                        "cold_count": 0,
                        "cold_seconds": 0.0,
                    }
                    carries[seq] = carry
                request_rng = rng.child("request", tenant_name, seq)
                self._launch(
                    loop,
                    runtimes[tenant_name],
                    seq,
                    request,
                    configuration,
                    loop.now,
                    stretch,
                    node_of,
                    carry,
                    request_rng,
                    finish_request,
                    lambda i, fn: inflight_aborts.__setitem__(i, fn),
                )

        def arrive(seq: int, tenant_name: str, request: RequestArrival) -> Callable[[], None]:
            def fire() -> None:
                offered[tenant_name] += 1
                tenant_of[seq] = tenant_name
                controller = self.controllers.get(tenant_name)
                if controller is not None:
                    controller.observe_arrival(loop.now, request)
                    configuration = controller.assign(seq, request)
                else:
                    configuration = runtimes[tenant_name].configuration
                if guard is not None:
                    # The guard sees the tenant name as the input class, so
                    # shed priorities are per tenant.
                    cause = guard.admit(loop.now, tenant_name, len(queue), ledger.active)
                    if cause is not None:
                        reject(seq, tenant_name, request, cause)
                        return
                entries[seq] = (tenant_name, request, configuration)
                heapq.heappush(queue, (order_key(tenant_name), seq))
                try_dispatch()
                if (
                    options.queue_capacity is not None
                    and len(queue) > options.queue_capacity
                ):
                    # Shed the *worst* queued entry (heap max), matching the
                    # serving layer's drop-from-the-back semantics.
                    worst = max(queue)
                    queue.remove(worst)
                    heapq.heapify(queue)
                    _, dropped_seq = worst
                    dropped_tenant, dropped_request, _ = entries.pop(dropped_seq)
                    reject(dropped_seq, dropped_tenant, dropped_request, "queue-full")

            return fire

        for seq, (tenant_name, request) in enumerate(merged):
            loop.schedule(request.arrival_time, arrive(seq, tenant_name, request))

        # -- node downtime: failures and spot evictions on one recovery path ----
        downtime: List[Tuple[float, str, str]] = []
        if options.node_failures_per_hour > 0:
            failure_stream = RngStream(derive_seed(seed, "fleet-node-failures"))
            from repro.execution.faults import poisson_node_event_schedule

            for when, node_name in poisson_node_event_schedule(
                failure_stream,
                duration_seconds,
                options.node_failures_per_hour,
                [node.name for node in self.cluster.nodes],
            ):
                downtime.append((when, node_name, "failure"))
        if options.spot_evictions_per_hour > 0:
            for when, node_name in spot_eviction_schedule(
                self.cluster,
                duration_seconds,
                options.spot_evictions_per_hour,
                seed,
            ):
                downtime.append((when, node_name, "spot-eviction"))
        downtime.sort(key=lambda event: (event[0], event[1], event[2]))

        def take_down(node_name: str, kind: str) -> Callable[[], None]:
            def fire() -> None:
                nonlocal node_failures, spot_evictions
                if not self.cluster.node(node_name).healthy:
                    return  # struck while already down
                affected = ledger.fail_node(node_name, loop.now)
                if kind == "failure":
                    node_failures += 1
                    recovery = options.node_recovery_seconds
                else:
                    spot_evictions += 1
                    recovery = options.spot_recovery_seconds
                self.container_pool.evict_node(node_name)
                loop.schedule_after(recovery, lambda: recover(node_name))
                for seq in affected:
                    abort = inflight_aborts.pop(seq, None)
                    if abort is not None:
                        abort(loop.now)
                    tenant_name, _, _ = entries[seq]
                    heapq.heappush(queue, (order_key(tenant_name), seq))
                try_dispatch()

            return fire

        def recover(node_name: str) -> None:
            ledger.restore_node(node_name, loop.now)
            try_dispatch()

        for when, node_name, kind in downtime:
            loop.schedule(when, take_down(node_name, kind))

        loop.run()
        ledger.advance(loop.now)

        cpu_util, mem_util, mean_concurrency = ledger.utilization()
        tenant_results: Dict[str, TenantResult] = {}
        total_cost = 0.0
        for tenant in self.tenants:
            name = tenant.name
            metrics = _summarize_tenant(
                outcomes[name],
                rejected[name],
                causes[name],
                offered[name],
                duration_seconds,
                runtimes[name].slo,
            )
            total_cost += metrics.total_cost
            controller = self.controllers.get(name)
            tenant_results[name] = TenantResult(
                tenant=name,
                priority=tenant.priority,
                metrics=metrics,
                outcomes=outcomes[name],
                rejected=rejected[name],
                rejected_by_cause=dict(causes[name]),
                control=controller.summary() if controller is not None else None,
            )

        return FleetResult(
            policy=options.placement,
            duration_seconds=duration_seconds,
            tenants=tenant_results,
            total_cost=total_cost,
            cpu_utilization=cpu_util,
            memory_utilization=mem_util,
            peak_concurrency=ledger.peak_active,
            mean_concurrency=mean_concurrency,
            node_failures=node_failures,
            spot_evictions=spot_evictions,
            interference_stretched=len(stretches),
            mean_stretch=(sum(stretches) / len(stretches)) if stretches else 1.0,
            protection_events=guard.drain_events() if guard is not None else [],
        )


def _summarize_tenant(
    outcomes: Sequence[ServedRequest],
    rejected: Sequence[RequestArrival],
    causes: Dict[str, int],
    offered: int,
    duration_seconds: float,
    slo: Optional[SLO],
) -> ServingMetrics:
    """Per-tenant :class:`ServingMetrics` (fleet-wide gauges zeroed)."""
    latencies = [o.latency_seconds for o in outcomes]
    queueing = [o.queueing_delay for o in outcomes]
    costs = [o.cost for o in outcomes]
    completed = len(outcomes)
    makespan = max((o.completion_time for o in outcomes), default=0.0)
    slo_limit = slo.latency_limit if slo is not None else None
    attainment: Optional[float] = None
    if slo_limit is not None and completed:
        attainment = sum(1 for l in latencies if l <= slo_limit) / completed
    successes = sum(1 for o in outcomes if o.succeeded)
    return ServingMetrics(
        duration_seconds=duration_seconds,
        offered=offered,
        completed=completed,
        rejected=len(rejected),
        failed=sum(1 for o in outcomes if not o.succeeded),
        makespan_seconds=makespan,
        offered_rate_rps=offered / duration_seconds if duration_seconds > 0 else 0.0,
        throughput_rps=completed / makespan if makespan > 0 else 0.0,
        latency_mean_seconds=sum(latencies) / completed if completed else float("nan"),
        latency_p50_seconds=percentile(latencies, 50),
        latency_p95_seconds=percentile(latencies, 95),
        latency_p99_seconds=percentile(latencies, 99),
        latency_max_seconds=max(latencies) if completed else float("nan"),
        queueing_mean_seconds=sum(queueing) / completed if completed else float("nan"),
        queueing_p95_seconds=percentile(queueing, 95),
        queueing_max_seconds=max(queueing) if completed else float("nan"),
        slo_limit_seconds=slo_limit,
        slo_attainment=attainment,
        cold_start_request_rate=(
            sum(1 for o in outcomes if o.cold_start_count > 0) / completed
            if completed
            else 0.0
        ),
        cold_start_invocations=sum(o.cold_start_count for o in outcomes),
        mean_cost_per_request=sum(costs) / completed if completed else float("nan"),
        total_cost=sum(costs),
        cpu_utilization=None,
        memory_utilization=None,
        peak_concurrency=0,
        mean_concurrency=0.0,
        goodput_rps=successes / makespan if makespan > 0 else 0.0,
        availability=successes / offered if offered else 1.0,
        wasted_seconds=sum(o.wasted_seconds for o in outcomes),
        node_failures=0,
        rejected_by_cause=dict(causes),
    )

"""Array-friendly event calendar for the batched serving engine.

The scalar :class:`~repro.execution.events.EventLoop` stores one closure
per event behind a ``(timestamp, counter)`` heap key.  That is flexible but
expensive on the serving hot path, where millions of events fall into a
handful of homogeneous kinds (arrival, function start, container release,
request completion).  The :class:`EventCalendar` here keeps the *exact*
ordering contract of the event loop — timestamp order, insertion order on
ties — while representing events as plain tuples of primitives:

* a **backbone lane** holds a pre-sorted homogeneous stream (the arrival
  timestamps), consuming no per-event heap work at all; and
* a **dynamic lane** is a binary heap of ``(time, seq, kind, a, b)``
  records pushed while the simulation runs.

Sequence numbers replicate the scalar engine's tie-breaking: backbone
events own seqs ``0..n-1`` (the scalar run schedules every arrival before
any dynamic event, so arrivals win ties against dynamic events), and the
dynamic counter continues from ``n`` in push order.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

__all__ = ["EventCalendar"]

#: One event record: (time, seq, kind, a, b).
Event = Tuple[float, int, int, int, int]


class EventCalendar:
    """Two-lane discrete-event calendar with EventLoop tie-breaking.

    Parameters
    ----------
    backbone_times:
        Non-decreasing timestamps pre-loaded into the backbone lane.  The
        ``i``-th backbone event pops as ``(time, i, backbone_kind, i, 0)``.
    backbone_kind:
        Event kind code stamped on backbone events.
    """

    __slots__ = ("_backbone", "_backbone_kind", "_cursor", "_heap", "_seq", "now")

    def __init__(
        self,
        backbone_times: Optional[Sequence[float]] = None,
        backbone_kind: int = 0,
    ) -> None:
        times = [float(t) for t in backbone_times] if backbone_times is not None else []
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("backbone timestamps must be non-decreasing")
        self._backbone: List[float] = times
        self._backbone_kind = int(backbone_kind)
        self._cursor = 0
        self._heap: List[Event] = []
        self._seq = len(times)
        self.now = 0.0

    def push(self, time: float, kind: int, a: int = 0, b: int = 0) -> int:
        """Schedule one dynamic event; returns its sequence number."""
        if time < self.now - 1e-9:
            raise ValueError("cannot schedule an event in the past")
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (float(time), seq, int(kind), int(a), int(b)))
        return seq

    def __len__(self) -> int:
        return (len(self._backbone) - self._cursor) + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < len(self._backbone) or bool(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the next event (raises IndexError when empty)."""
        if self._cursor < len(self._backbone):
            backbone_time = self._backbone[self._cursor]
            if not self._heap or (backbone_time, self._cursor) <= self._heap[0][:2]:
                return backbone_time
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next event in (time, seq) order."""
        if self._cursor < len(self._backbone):
            backbone_time = self._backbone[self._cursor]
            if not self._heap or (backbone_time, self._cursor) <= self._heap[0][:2]:
                event = (
                    backbone_time,
                    self._cursor,
                    self._backbone_kind,
                    self._cursor,
                    0,
                )
                self._cursor += 1
                self.now = backbone_time
                return event
        event = heapq.heappop(self._heap)
        self.now = event[0]
        return event

"""Workflow executor: simulate one workflow invocation end to end.

The executor combines the workflow DAG, a performance model, a pricing model
and (optionally) a warm-container pool into a single call:
``execute(workflow, configuration)`` → :class:`ExecutionTrace`.  All search
algorithms in this reproduction observe the platform exclusively through this
call, exactly as the paper's methods only observe measured runtime and cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.execution.container import ContainerPool
from repro.execution.trace import ExecutionStatus, ExecutionTrace, FunctionExecution
from repro.perfmodel.base import OutOfMemoryError, PerformanceModel
from repro.pricing.model import PAPER_PRICING, PricingModel
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration

__all__ = ["ExecutorOptions", "WorkflowExecutor"]


@dataclass(frozen=True)
class ExecutorOptions:
    """Tunable behaviour of the simulator.

    Attributes
    ----------
    simulate_cold_starts:
        When True, invocations that miss the warm pool pay the profile's
        cold-start latency (and are billed for it).
    fail_fast_on_oom:
        When True, :class:`OutOfMemoryError` propagates to the caller instead
        of being recorded as a failed trace.  The configuration search
        algorithms prefer the recorded-trace behaviour (they must observe the
        error and revert), so this defaults to False.
    charge_failed_invocations:
        Whether an OOM-killed invocation is billed for the time it ran before
        being killed (platforms do bill these); modelled as the runtime the
        function would have had at its minimum viable memory.
    """

    simulate_cold_starts: bool = False
    fail_fast_on_oom: bool = False
    charge_failed_invocations: bool = True


class WorkflowExecutor:
    """Simulates workflow executions under per-function resource configs."""

    def __init__(
        self,
        performance_model: PerformanceModel,
        pricing: PricingModel = PAPER_PRICING,
        options: Optional[ExecutorOptions] = None,
        container_pool: Optional[ContainerPool] = None,
    ) -> None:
        self.performance_model = performance_model
        self.pricing = pricing
        self.options = options if options is not None else ExecutorOptions()
        self.container_pool = container_pool if container_pool is not None else ContainerPool()
        self._executions = 0
        # The parallel evaluation backend drives one executor from several
        # threads; the counter and the warm pool are the only shared state.
        self._lock = threading.Lock()

    @property
    def executions(self) -> int:
        """Number of workflow executions simulated so far."""
        return self._executions

    def execute(
        self,
        workflow: Workflow,
        configuration: WorkflowConfiguration,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
        trigger_time: float = 0.0,
    ) -> ExecutionTrace:
        """Simulate one execution of ``workflow`` under ``configuration``.

        Parameters
        ----------
        workflow:
            The DAG to execute.
        configuration:
            Per-function resource allocations; must cover every function.
        input_scale:
            Relative input size forwarded to the performance model.
        rng:
            Optional random stream enabling run-to-run noise.
        trigger_time:
            Simulated timestamp of the workflow trigger (used for the warm
            pool when cold starts are simulated).

        Returns
        -------
        ExecutionTrace
            Per-function records plus end-to-end latency and total cost.  If
            some function OOMs, its record carries ``ExecutionStatus.OOM`` and
            all dependent functions are marked ``SKIPPED`` (unless
            ``fail_fast_on_oom`` is set, in which case the error propagates).
        """
        missing = [name for name in workflow.function_names if name not in configuration]
        if missing:
            raise KeyError(f"configuration is missing functions: {missing}")

        trace = ExecutionTrace(workflow_name=workflow.name, input_scale=input_scale)
        finish_times: Dict[str, float] = {}
        failed: Dict[str, bool] = {}

        for function_name in workflow.topological_order():
            spec = workflow.function(function_name)
            config = configuration[function_name]
            predecessors = workflow.predecessors(function_name)
            start_time = max(
                (finish_times[p] for p in predecessors), default=float(trigger_time)
            )

            if any(failed.get(p, False) for p in predecessors):
                trace.add(
                    FunctionExecution(
                        function_name=function_name,
                        config=config,
                        start_time=start_time,
                        finish_time=start_time,
                        runtime_seconds=0.0,
                        cost=0.0,
                        status=ExecutionStatus.SKIPPED,
                        input_scale=input_scale,
                    )
                )
                finish_times[function_name] = start_time
                failed[function_name] = True
                continue

            record = self._invoke(
                spec.profile_name,
                function_name,
                config,
                start_time,
                input_scale,
                rng.child(function_name) if rng is not None else None,
            )
            trace.add(record)
            finish_times[function_name] = record.finish_time
            failed[function_name] = not record.succeeded

        with self._lock:
            self._executions += 1
        return trace

    # -- single invocation -------------------------------------------------------
    def _invoke(
        self,
        profile_name: str,
        function_name: str,
        config: ResourceConfig,
        start_time: float,
        input_scale: float,
        rng: Optional[RngStream],
    ) -> FunctionExecution:
        function_model = self.performance_model.function_model(profile_name)

        cold_start = False
        cold_start_seconds = 0.0
        if self.options.simulate_cold_starts:
            with self._lock:
                container, cold_start = self.container_pool.acquire(
                    function_name, config, start_time
                )
            if cold_start:
                cold_start_seconds = self._cold_start_latency(profile_name)
        else:
            container = None

        try:
            estimate = function_model.estimate(config, input_scale=input_scale, rng=rng)
        except OutOfMemoryError:
            # The OOM kill destroys the container.  Acquired containers are
            # checked out of the warm pool, so simply never releasing this
            # one keeps dead containers from serving future warm starts.
            if self.options.fail_fast_on_oom:
                raise
            runtime = 0.0
            cost = 0.0
            if self.options.charge_failed_invocations:
                # The container runs until the kernel OOM-kills it; approximate
                # the billed time with the runtime at the minimum viable memory.
                minimum_memory = function_model.minimum_memory_mb(input_scale)
                viable = config.with_memory(minimum_memory)
                runtime = function_model.estimate(viable, input_scale=input_scale).total_seconds
                cost = self.pricing.invocation_cost(runtime, config)
            finish_time = start_time + runtime + cold_start_seconds
            return FunctionExecution(
                function_name=function_name,
                config=config,
                start_time=start_time,
                finish_time=finish_time,
                runtime_seconds=runtime + cold_start_seconds,
                cost=cost,
                status=ExecutionStatus.OOM,
                cold_start=cold_start,
                cold_start_seconds=cold_start_seconds,
                input_scale=input_scale,
            )

        runtime = estimate.total_seconds + cold_start_seconds
        finish_time = start_time + runtime
        cost = self.pricing.invocation_cost(runtime, config)
        if container is not None:
            with self._lock:
                self.container_pool.release(container, finish_time)
        return FunctionExecution(
            function_name=function_name,
            config=config,
            start_time=start_time,
            finish_time=finish_time,
            runtime_seconds=runtime,
            cost=cost,
            status=ExecutionStatus.SUCCESS,
            cold_start=cold_start,
            cold_start_seconds=cold_start_seconds,
            input_scale=input_scale,
        )

    def cold_start_latency(self, profile_name: str) -> float:
        """Cold-start latency of a function profile (0 when unspecified).

        Exposed publicly because the serving layer overlays cold starts on
        memoized trigger-0 traces instead of paying them inside ``execute``.
        """
        function_model = self.performance_model.function_model(profile_name)
        profile = getattr(function_model, "profile", None)
        if profile is not None:
            return float(getattr(profile, "cold_start_seconds", 0.0))
        return 0.0

    # Backwards-compatible alias (pre-serving-layer name).
    _cold_start_latency = cold_start_latency

"""Pluggable evaluation backends.

Every search method observes the platform through a
:class:`~repro.core.objective.WorkflowObjective`, and the objective in turn
delegates each evaluation to an :class:`EvaluationBackend`.  The backend layer
is where the *execution substrate* is chosen and composed:

* :class:`SimulatorBackend` — the default substrate, wrapping one
  :class:`~repro.execution.executor.WorkflowExecutor` (the paper's testbed
  stand-in).
* :class:`CachingBackend` — a decorator memoizing deterministic evaluations
  keyed on ``(workflow, configuration, input_scale)`` with hit/miss counters.
  Noisy evaluations (those carrying an :class:`~repro.utils.rng.RngStream`)
  always bypass the cache.
* :class:`ParallelBackend` — a decorator fanning :meth:`evaluate_batch` out
  over a thread pool, preserving submission order.
* :class:`~repro.execution.vectorized.VectorizedBackend` — a substrate
  serving whole batches from NumPy array kernels, bit-identical to the
  simulator (defined in :mod:`repro.execution.vectorized`).

Backends compose: ``CachingBackend(ParallelBackend(SimulatorBackend(...)))``
serves repeated configurations from memory and simulates fresh ones in
parallel.  :func:`build_backend` assembles that stack from plain knobs
(``backend=``, ``cache=``, ``workers=``) so experiment settings and the CLI
can select a substrate by name.  Future substrates (multi-provider adapters,
trace replay, distributed evaluation) plug in by implementing the same
protocol.
"""

from __future__ import annotations

import abc
import dataclasses
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.execution.executor import WorkflowExecutor
from repro.execution.trace import ExecutionTrace
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration

__all__ = [
    "BackendStats",
    "EvaluationBackend",
    "SimulatorBackend",
    "CachingBackend",
    "ParallelBackend",
    "BACKEND_NAMES",
    "build_backend",
]

#: Substrate names understood by :func:`build_backend` (and the CLI).
BACKEND_NAMES: Tuple[str, ...] = ("simulator", "parallel", "vectorized")

#: Thread-pool width used when the parallel substrate is selected without an
#: explicit worker count.
DEFAULT_PARALLEL_WORKERS = 4


@dataclass
class BackendStats:
    """Counters describing how a backend served its evaluations.

    Attributes
    ----------
    evaluations:
        Traces returned to callers (cache hits included).
    simulations:
        Evaluations that actually ran the underlying substrate one
        configuration at a time.
    vectorized:
        Evaluations served by the array engine of a
        :class:`~repro.execution.vectorized.VectorizedBackend` (zero on
        scalar substrates).
    batches:
        ``evaluate_batch`` calls served.
    cache_hits / cache_misses:
        Memoization counters (zero unless a :class:`CachingBackend` is in the
        stack).
    cold_starts / warm_hits / evictions:
        Warm-container-pool counters of the underlying executor (zero when
        the substrate simulates no cold starts and no serving layer shares
        its pool).
    fault_kills:
        Containers destroyed mid-invocation by the fault-injection layer
        (zero unless a serving run injected faults through the shared pool).
    """

    evaluations: int = 0
    simulations: int = 0
    vectorized: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cold_starts: int = 0
    warm_hits: int = 0
    evictions: int = 0
    fault_kills: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served from memory."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    def delta(self, previous: "BackendStats") -> "BackendStats":
        """Counter growth since an earlier snapshot of the same backend.

        Enumerates the dataclass fields, so new counters are picked up
        automatically.
        """
        return BackendStats(
            **{
                f.name: getattr(self, f.name) - getattr(previous, f.name)
                for f in dataclasses.fields(self)
            }
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.evaluations} evaluations "
            f"({self.simulations} simulated, {self.batches} batches)"
        )
        if self.vectorized:
            text += f", {self.vectorized} vectorized"
        if self.cache_hits or self.cache_misses:
            text += (
                f", cache {self.cache_hits} hits / {self.cache_misses} misses "
                f"({self.cache_hit_rate * 100:.1f}% hit rate)"
            )
        if self.cold_starts or self.warm_hits or self.evictions:
            text += (
                f", pool {self.cold_starts} cold starts / {self.warm_hits} warm hits"
                f" / {self.evictions} evictions"
            )
        if self.fault_kills:
            text += f", {self.fault_kills} fault kills"
        return text


class EvaluationBackend(abc.ABC):
    """Protocol every execution substrate implements.

    A backend turns ``(workflow, configuration, input_scale, rng)`` into an
    :class:`~repro.execution.trace.ExecutionTrace`.  ``evaluate_batch``
    evaluates many candidate configurations against the same workflow and
    input scale, returning traces in submission order; decorators may serve
    entries from a cache or run them concurrently.
    """

    #: Short name used in reports and factory lookups.
    name: str = "backend"

    @abc.abstractmethod
    def evaluate(
        self,
        workflow: Workflow,
        configuration: WorkflowConfiguration,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> ExecutionTrace:
        """Evaluate one configuration and return its execution trace."""

    def evaluate_batch(
        self,
        workflow: Workflow,
        configurations: Sequence[WorkflowConfiguration],
        input_scale: float = 1.0,
        rngs: Optional[Sequence[Optional[RngStream]]] = None,
    ) -> List[ExecutionTrace]:
        """Evaluate many configurations; traces come back in submission order.

        ``rngs`` optionally supplies one (pre-derived) random stream per
        configuration so that noisy batches stay deterministic regardless of
        the execution order a decorator chooses.
        """
        rngs = self._check_rngs(configurations, rngs)
        return [
            self.evaluate(workflow, configuration, input_scale=input_scale, rng=rng)
            for configuration, rng in zip(configurations, rngs)
        ]

    @property
    def stats(self) -> BackendStats:
        """Snapshot of this backend stack's counters."""
        return BackendStats()

    @property
    def deterministic(self) -> bool:
        """Whether identical rng-free evaluations always yield identical traces.

        Stateful substrates (e.g. a simulator with a warm-container pool)
        are not: the trace depends on what ran before.  Caching layers must
        not memoize over a non-deterministic substrate.
        """
        return True

    def describe(self) -> str:
        """Human-readable description of the backend stack."""
        return self.name

    @staticmethod
    def _check_rngs(
        configurations: Sequence[WorkflowConfiguration],
        rngs: Optional[Sequence[Optional[RngStream]]],
    ) -> Sequence[Optional[RngStream]]:
        if rngs is None:
            return [None] * len(configurations)
        if len(rngs) != len(configurations):
            raise ValueError(
                f"rngs length ({len(rngs)}) must match configurations "
                f"({len(configurations)})"
            )
        return rngs


class SimulatorBackend(EvaluationBackend):
    """The default substrate: one evaluation = one simulated execution."""

    name = "simulator"

    def __init__(self, executor: WorkflowExecutor) -> None:
        self.executor = executor
        self._lock = threading.Lock()
        self._stats = BackendStats()

    def evaluate(
        self,
        workflow: Workflow,
        configuration: WorkflowConfiguration,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> ExecutionTrace:
        trace = self.executor.execute(
            workflow, configuration, input_scale=input_scale, rng=rng
        )
        with self._lock:
            self._stats.evaluations += 1
            self._stats.simulations += 1
        return trace

    def evaluate_batch(
        self,
        workflow: Workflow,
        configurations: Sequence[WorkflowConfiguration],
        input_scale: float = 1.0,
        rngs: Optional[Sequence[Optional[RngStream]]] = None,
    ) -> List[ExecutionTrace]:
        traces = super().evaluate_batch(workflow, configurations, input_scale, rngs)
        with self._lock:
            self._stats.batches += 1
        return traces

    @property
    def stats(self) -> BackendStats:
        pool = self.executor.container_pool
        with self._lock:
            stats = BackendStats(**vars(self._stats))
        stats.cold_starts = pool.cold_starts
        stats.warm_hits = pool.warm_hits
        stats.evictions = pool.evictions
        stats.fault_kills = pool.fault_kills
        return stats

    @property
    def deterministic(self) -> bool:
        # A warm-container pool makes the trace depend on execution history
        # (the first run pays cold starts, later ones may not).
        return not self.executor.options.simulate_cold_starts


class CachingBackend(EvaluationBackend):
    """Memoizing decorator for deterministic evaluations.

    The cache key is ``(workflow name, configuration, input_scale)``.  An
    evaluation carrying an ``rng`` is potentially noisy and therefore always
    bypasses the cache — both for lookups and for insertion — so noisy
    objectives observe fresh executions every time.  Likewise, when the inner
    backend reports itself non-``deterministic`` (e.g. a simulator with
    ``simulate_cold_starts=True``, whose traces depend on warm-pool history),
    every evaluation passes straight through: memoizing would replay the
    first cold-start trace forever and diverge from an uncached run.

    Parameters
    ----------
    inner:
        The substrate serving cache misses.
    max_entries:
        Optional LRU capacity; ``None`` keeps every entry.
    context:
        Optional hashable evaluation context folded into every cache key.
        ``(workflow, configuration, input_scale)`` identifies an evaluation
        only while everything else about it is fixed; a caller whose
        evaluations additionally depend on ambient state — the adaptive
        controller re-tuning against *observed* traffic phases is the
        motivating case — sets the context to that state's signature (see
        :meth:`set_context`) so entries recorded under one phase are never
        replayed for another.
    """

    name = "caching"

    def __init__(
        self,
        inner: EvaluationBackend,
        max_entries: Optional[int] = None,
        context: Optional[Hashable] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.inner = inner
        self.max_entries = max_entries
        self._context: Optional[Hashable] = context
        self._cache: "OrderedDict[Hashable, ExecutionTrace]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._batches_served = 0  # batches answered without touching inner

    # -- cache plumbing ---------------------------------------------------------
    @property
    def context(self) -> Optional[Hashable]:
        """The evaluation context currently folded into cache keys."""
        return self._context

    def set_context(self, context: Optional[Hashable]) -> None:
        """Switch the evaluation context new lookups and insertions key on.

        Entries recorded under other contexts stay cached (switching back
        re-enables them) but are invisible to the current context, so e.g. a
        re-tune against one traffic phase can never read entries recorded
        under a different phase's context.  ``None`` restores the default
        (context-free) key space.
        """
        with self._lock:
            self._context = context

    def _key(
        self, workflow: Workflow, configuration: WorkflowConfiguration, input_scale: float
    ) -> Hashable:
        # Canonicalised to plain-float tuples so configurations assembled from
        # NumPy array batches (np.float64 allocations) and hand-built scalar
        # configurations hash to the same entry: vectorized and scalar paths
        # share the cache.
        return (
            workflow.name,
            tuple(
                (name, float(config.vcpu), float(config.memory_mb))
                for name, config in sorted(configuration.items())
            ),
            float(input_scale),
            self._context,
        )

    def _lookup(self, key: Hashable) -> Optional[ExecutionTrace]:
        with self._lock:
            trace = self._cache.get(key)
            if trace is not None:
                self._cache.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return trace

    def _store(self, key: Hashable, trace: ExecutionTrace) -> None:
        with self._lock:
            self._cache[key] = trace
            self._cache.move_to_end(key)
            if self.max_entries is not None:
                while len(self._cache) > self.max_entries:
                    self._cache.popitem(last=False)

    # -- EvaluationBackend ------------------------------------------------------
    def evaluate(
        self,
        workflow: Workflow,
        configuration: WorkflowConfiguration,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> ExecutionTrace:
        if rng is not None or not self.inner.deterministic:
            # Potentially noisy or stateful: never cached, never served
            # from the cache.
            return self.inner.evaluate(
                workflow, configuration, input_scale=input_scale, rng=rng
            )
        key = self._key(workflow, configuration, input_scale)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        trace = self.inner.evaluate(workflow, configuration, input_scale=input_scale)
        self._store(key, trace)
        return trace

    def evaluate_batch(
        self,
        workflow: Workflow,
        configurations: Sequence[WorkflowConfiguration],
        input_scale: float = 1.0,
        rngs: Optional[Sequence[Optional[RngStream]]] = None,
    ) -> List[ExecutionTrace]:
        if not self.inner.deterministic:
            return self.inner.evaluate_batch(workflow, configurations, input_scale, rngs)
        rngs = self._check_rngs(configurations, rngs)
        traces: List[Optional[ExecutionTrace]] = [None] * len(configurations)

        # Deterministic entries are looked up first; duplicates within the
        # batch collapse onto one simulation.  Noisy entries go straight to
        # the inner backend.
        miss_indices: List[int] = []
        first_seen: "OrderedDict[Hashable, int]" = OrderedDict()
        for index, (configuration, rng) in enumerate(zip(configurations, rngs)):
            if rng is not None:
                miss_indices.append(index)
                continue
            key = self._key(workflow, configuration, input_scale)
            cached = self._lookup(key)
            if cached is not None:
                traces[index] = cached
            elif key in first_seen:
                # Duplicate miss within this batch: simulated once, then
                # served from the cache below (counted as a hit).
                with self._lock:
                    self._misses -= 1
                    self._hits += 1
            else:
                first_seen[key] = index
                miss_indices.append(index)

        if not miss_indices:
            # Fully cache-served: the inner backend never sees this batch,
            # so count it here to keep the batch counter truthful.
            with self._lock:
                self._batches_served += 1
        if miss_indices:
            miss_traces = self.inner.evaluate_batch(
                workflow,
                [configurations[i] for i in miss_indices],
                input_scale=input_scale,
                rngs=[rngs[i] for i in miss_indices],
            )
            if len(miss_traces) != len(miss_indices):
                raise RuntimeError(
                    f"inner backend returned {len(miss_traces)} traces "
                    f"for {len(miss_indices)} submitted configurations"
                )
            for index, trace in zip(miss_indices, miss_traces):
                traces[index] = trace
                if rngs[index] is None:
                    self._store(self._key(workflow, configurations[index], input_scale), trace)

        # Fill duplicate-miss positions from their first occurrence's trace
        # (not from the cache, which a bounded LRU may already have evicted).
        for index, (configuration, rng) in enumerate(zip(configurations, rngs)):
            if traces[index] is None and rng is None:
                traces[index] = traces[first_seen[self._key(workflow, configuration, input_scale)]]
        # Every slot is filled by construction; a None here means the inner
        # backend broke the protocol, and silently dropping it would shift
        # every later trace onto the wrong configuration.
        if any(trace is None for trace in traces):
            raise RuntimeError("inner backend returned no trace for some configurations")
        return traces  # type: ignore[return-value]

    # -- inspection ---------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Evaluations served from the cache."""
        return self._hits

    @property
    def cache_misses(self) -> int:
        """Evaluations that had to run the inner backend."""
        return self._misses

    @property
    def cache_size(self) -> int:
        """Entries currently memoized."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop all memoized traces (counters are kept)."""
        with self._lock:
            self._cache.clear()

    @property
    def stats(self) -> BackendStats:
        inner = self.inner.stats
        with self._lock:
            return BackendStats(
                evaluations=inner.evaluations + self._hits,
                simulations=inner.simulations,
                vectorized=inner.vectorized,
                batches=inner.batches + self._batches_served,
                cache_hits=inner.cache_hits + self._hits,
                cache_misses=inner.cache_misses + self._misses,
                cold_starts=inner.cold_starts,
                warm_hits=inner.warm_hits,
                evictions=inner.evictions,
                fault_kills=inner.fault_kills,
            )

    @property
    def deterministic(self) -> bool:
        return self.inner.deterministic

    def describe(self) -> str:
        capacity = "unbounded" if self.max_entries is None else str(self.max_entries)
        return f"caching({capacity}) -> {self.inner.describe()}"


class ParallelBackend(EvaluationBackend):
    """Decorator fanning batches out over a thread pool.

    Single evaluations pass straight through; ``evaluate_batch`` submits every
    configuration to a pool of ``max_workers`` threads and reassembles the
    traces in submission order.  Determinism is preserved because each batch
    entry carries its own pre-derived random stream (or none at all) — the
    simulated traces do not depend on scheduling order.  The one exception is
    ``simulate_cold_starts=True``: the warm pool is shared state, so *which*
    concurrent evaluation pays a cold start depends on thread timing; keep
    cold-start studies on a sequential backend when bit-reproducibility
    matters.
    """

    name = "parallel"

    def __init__(self, inner: EvaluationBackend, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.inner = inner
        self.max_workers = int(max_workers)
        self._lock = threading.Lock()
        self._batches = 0
        # The pool is created lazily on the first fan-out and reused across
        # batches; repeated small batches would otherwise pay thread spawn
        # and join costs every call.
        self._pool: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-eval",
                )
                # Reap the worker threads when this backend is collected so
                # short-lived backends (one per objective) don't accumulate
                # idle threads for the life of the process.
                self._finalizer = weakref.finalize(
                    self, self._pool.shutdown, wait=False
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later batch re-creates it)."""
        with self._lock:
            pool, self._pool = self._pool, None
            finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def evaluate(
        self,
        workflow: Workflow,
        configuration: WorkflowConfiguration,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> ExecutionTrace:
        return self.inner.evaluate(
            workflow, configuration, input_scale=input_scale, rng=rng
        )

    def evaluate_batch(
        self,
        workflow: Workflow,
        configurations: Sequence[WorkflowConfiguration],
        input_scale: float = 1.0,
        rngs: Optional[Sequence[Optional[RngStream]]] = None,
    ) -> List[ExecutionTrace]:
        rngs = self._check_rngs(configurations, rngs)
        if len(configurations) <= 1 or self.max_workers == 1:
            # Delegate wholesale; the inner backend counts the batch.
            return self.inner.evaluate_batch(workflow, configurations, input_scale, rngs)
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                self.inner.evaluate,
                workflow,
                configuration,
                input_scale,
                rng,
            )
            for configuration, rng in zip(configurations, rngs)
        ]
        traces = [future.result() for future in futures]
        with self._lock:
            self._batches += 1
        return traces

    @property
    def stats(self) -> BackendStats:
        stats = self.inner.stats
        with self._lock:
            stats.batches += self._batches
        return stats

    @property
    def deterministic(self) -> bool:
        return self.inner.deterministic

    def describe(self) -> str:
        return f"parallel({self.max_workers}) -> {self.inner.describe()}"


def build_backend(
    executor: WorkflowExecutor,
    name: str = "simulator",
    cache: bool = False,
    workers: Optional[int] = None,
    cache_entries: Optional[int] = None,
) -> EvaluationBackend:
    """Assemble a backend stack from plain knobs.

    Parameters
    ----------
    executor:
        The execution simulator at the bottom of the stack.
    name:
        ``"simulator"`` (sequential), ``"parallel"`` (batch fan-out over a
        thread pool) or ``"vectorized"`` (whole batches in one NumPy pass,
        bit-identical to the simulator).
    cache:
        Wrap the stack in a :class:`CachingBackend` (outermost, so hits never
        touch the thread pool).
    workers:
        Thread-pool width, honoured verbatim when given; values above 1
        imply the parallel substrate even when ``name`` is ``"simulator"``,
        and an explicit ``workers=1`` on a ``"parallel"`` backend degenerates
        to sequential delegation.  When omitted, the parallel substrate uses
        :data:`DEFAULT_PARALLEL_WORKERS`.  The vectorized substrate serves a
        batch in one single-threaded array pass, so ``workers`` is ignored
        there.
    cache_entries:
        Optional LRU capacity for the cache.
    """
    key = name.strip().lower()
    if key not in BACKEND_NAMES:
        raise KeyError(
            f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
        )
    if workers is not None and workers < 1:
        raise ValueError("workers must be at least 1")
    backend: EvaluationBackend
    if key == "vectorized":
        # Imported here: the vectorized module depends on this one.
        from repro.execution.vectorized import VectorizedBackend

        backend = VectorizedBackend(executor)
    else:
        if workers is None:
            workers = DEFAULT_PARALLEL_WORKERS if key == "parallel" else 1
        backend = SimulatorBackend(executor)
        if key == "parallel" or workers > 1:
            backend = ParallelBackend(backend, max_workers=workers)
    if cache:
        backend = CachingBackend(backend, max_entries=cache_entries)
    return backend

"""Discrete-event utilities and a request-stream simulator.

The input-aware experiment (paper §IV-D, Fig. 8) sends a *sequence* of
requests with varying input sizes through the configured workflow.  The
request-stream simulator here replays such a sequence on a discrete
:class:`EventLoop`, invoking the evaluation backend once per request and
letting the caller choose the configuration per request (which is exactly
what the Input-Aware Configuration Engine does).  Each request still executes
with unbounded capacity; the contended serving model (queueing, finite
clusters, autoscaling) lives in :mod:`repro.execution.serving`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.execution.backend import EvaluationBackend, SimulatorBackend
from repro.execution.executor import WorkflowExecutor
from repro.execution.trace import ExecutionTrace
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration

__all__ = ["EventLoop", "RequestArrival", "RequestOutcome", "RequestStreamSimulator"]


class EventLoop:
    """A minimal discrete-event queue (timestamp-ordered callbacks)."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, timestamp: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at ``timestamp``."""
        if timestamp < self._now - 1e-9:
            raise ValueError("cannot schedule an event in the past")
        heapq.heappush(self._queue, (float(timestamp), next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.schedule(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> int:
        """Process events in timestamp order; returns the number processed."""
        processed = 0
        while self._queue:
            timestamp, _, callback = self._queue[0]
            if until is not None and timestamp > until:
                break
            heapq.heappop(self._queue)
            self._now = timestamp
            callback()
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed

    def __len__(self) -> int:
        return len(self._queue)


class RequestArrival:
    """One request in a stream (immutable, ``__slots__``-backed).

    Million-request streams allocate one of these per arrival, so the class
    is a hand-written frozen record rather than a dataclass: ``__slots__``
    drops the per-instance ``__dict__`` (about 1.5x smaller, measured in
    ``benchmarks/results/BENCH_serving.json`` notes) and a dataclass cannot
    combine slots with field defaults before Python 3.10.

    Attributes
    ----------
    arrival_time:
        Simulated time at which the request arrives.
    input_scale:
        Relative input size of the request.
    input_class:
        Label such as ``"light"`` / ``"middle"`` / ``"heavy"`` used by the
        input-aware engine and by reporting.
    """

    __slots__ = ("arrival_time", "input_scale", "input_class")

    def __init__(
        self,
        arrival_time: float,
        input_scale: float = 1.0,
        input_class: str = "default",
    ) -> None:
        if arrival_time < 0:
            raise ValueError("arrival_time cannot be negative")
        if input_scale <= 0:
            raise ValueError("input_scale must be positive")
        object.__setattr__(self, "arrival_time", arrival_time)
        object.__setattr__(self, "input_scale", input_scale)
        object.__setattr__(self, "input_class", input_class)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RequestArrival is immutable")

    def __repr__(self) -> str:
        return (
            f"RequestArrival(arrival_time={self.arrival_time!r}, "
            f"input_scale={self.input_scale!r}, input_class={self.input_class!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestArrival):
            return NotImplemented
        return (
            self.arrival_time == other.arrival_time
            and self.input_scale == other.input_scale
            and self.input_class == other.input_class
        )

    def __hash__(self) -> int:
        return hash((self.arrival_time, self.input_scale, self.input_class))

    def __getstate__(self):
        return (self.arrival_time, self.input_scale, self.input_class)

    def __setstate__(self, state) -> None:
        arrival_time, input_scale, input_class = state
        object.__setattr__(self, "arrival_time", arrival_time)
        object.__setattr__(self, "input_scale", input_scale)
        object.__setattr__(self, "input_class", input_class)


@dataclass
class RequestOutcome:
    """The trace and metadata of one processed request."""

    request: RequestArrival
    trace: ExecutionTrace
    configuration: WorkflowConfiguration
    runtime_seconds: float = field(init=False)
    cost: float = field(init=False)

    def __post_init__(self) -> None:
        self.runtime_seconds = self.trace.end_to_end_latency - self.request.arrival_time
        self.cost = self.trace.total_cost


class RequestStreamSimulator:
    """Replay a stream of requests through a workflow on an event loop.

    Each request is executed independently (serverless functions scale out,
    so concurrent requests do not queue behind each other in this model); the
    value of the simulator is in selecting a possibly different configuration
    per request and aggregating per-class statistics.  Requests are processed
    in arrival-time order on an :class:`EventLoop` (ties keep stream order),
    and deterministic evaluations are routed through the
    :class:`~repro.execution.backend.EvaluationBackend` layer at trigger time
    0 and shifted to the arrival time — so a memoizing backend serves
    repeated ``(configuration, input_scale)`` requests from memory.  Noisy
    requests (an ``rng`` was given) bypass the cache by the backend's own
    rules, and a stateful executor (``simulate_cold_starts=True``) falls back
    to direct execution at the arrival trigger, where warm-pool history is
    time-relevant.
    """

    def __init__(
        self,
        executor: WorkflowExecutor,
        workflow: Workflow,
        backend: Optional[EvaluationBackend] = None,
    ) -> None:
        self.executor = executor
        self.workflow = workflow
        self.backend = backend if backend is not None else SimulatorBackend(executor)

    def run(
        self,
        requests: Iterable[RequestArrival],
        configuration_for: Callable[[RequestArrival], WorkflowConfiguration],
        rng: Optional[RngStream] = None,
    ) -> List[RequestOutcome]:
        """Process every request and return its outcome.

        Parameters
        ----------
        requests:
            The request stream (need not be sorted; outcomes preserve stream
            order even though processing follows arrival order).
        configuration_for:
            Callback choosing the configuration for each request — a constant
            function for the fixed-configuration baselines, or the input-aware
            engine's dispatch for AARC.
        rng:
            Optional random stream for execution noise (derived per request
            index, so outcomes do not depend on processing order).
        """
        request_list = list(requests)
        outcomes: List[Optional[RequestOutcome]] = [None] * len(request_list)
        # Warm-pool state makes traces depend on absolute trigger times, so a
        # cold-start-simulating executor cannot be served by trigger-0 traces.
        direct = self.executor.options.simulate_cold_starts
        loop = EventLoop()

        def process(index: int, request: RequestArrival) -> Callable[[], None]:
            def fire() -> None:
                configuration = configuration_for(request)
                request_rng = rng.child("request", index) if rng is not None else None
                if direct:
                    trace = self.executor.execute(
                        self.workflow,
                        configuration,
                        input_scale=request.input_scale,
                        rng=request_rng,
                        trigger_time=request.arrival_time,
                    )
                else:
                    trace = self.backend.evaluate(
                        self.workflow,
                        configuration,
                        input_scale=request.input_scale,
                        rng=request_rng,
                    ).shifted(request.arrival_time)
                outcomes[index] = RequestOutcome(
                    request=request, trace=trace, configuration=configuration
                )

            return fire

        for index, request in enumerate(request_list):
            loop.schedule(request.arrival_time, process(index, request))
        loop.run()
        # Every slot is filled: one event was scheduled per request.
        return [outcome for outcome in outcomes if outcome is not None]

"""Cluster model with affinity-aware container placement.

The paper's framework hands the discovered per-function configurations to the
cloud infrastructure "for subsequent container resource allocation" (step ❼).
This module models that last step: a set of nodes with CPU and memory
capacity, and a placement policy that co-locates containers with
*complementary* resource affinities (CPU-hungry next to memory-hungry) so
that node capacity in both dimensions is used evenly — the affinity-aware
co-location that gives the paper its name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.workflow.resources import ResourceConfig, WorkflowConfiguration

__all__ = ["Node", "Cluster", "PlacementError", "affinity_aware_placement"]


class PlacementError(RuntimeError):
    """Raised when a container cannot be placed on any node."""


@dataclass
class Node:
    """A worker node with finite CPU and memory capacity.

    ``instance_type`` names the catalog shape the node was provisioned from
    (``None`` for ad-hoc homogeneous nodes); ``price_multiplier`` scales
    per-request billing for work hosted on this node, and ``spot`` marks
    preemptible capacity subject to eviction schedules.
    """

    name: str
    vcpu_capacity: float
    memory_capacity_mb: float
    vcpu_used: float = 0.0
    memory_used_mb: float = 0.0
    placements: List[Tuple[str, ResourceConfig]] = field(default_factory=list)
    healthy: bool = True
    instance_type: Optional[str] = None
    price_multiplier: float = 1.0
    spot: bool = False

    def __post_init__(self) -> None:
        if self.vcpu_capacity <= 0 or self.memory_capacity_mb <= 0:
            raise ValueError("node capacities must be positive")

    # -- capacity queries -------------------------------------------------------
    def can_fit(self, config: ResourceConfig) -> bool:
        """Whether the node has room for one more container of this size."""
        return (
            self.healthy
            and self.vcpu_used + config.vcpu <= self.vcpu_capacity + 1e-9
            and self.memory_used_mb + config.memory_mb <= self.memory_capacity_mb + 1e-9
        )

    def place(self, function_name: str, config: ResourceConfig) -> None:
        """Reserve capacity for one container."""
        if not self.can_fit(config):
            raise PlacementError(
                f"container for {function_name!r} ({config.describe()}) does not fit on node {self.name!r}"
            )
        self.vcpu_used += config.vcpu
        self.memory_used_mb += config.memory_mb
        self.placements.append((function_name, config))

    def remove(self, function_name: str) -> None:
        """Release the capacity of one previously placed container."""
        for index, (name, config) in enumerate(self.placements):
            if name == function_name:
                del self.placements[index]
                self.vcpu_used -= config.vcpu
                self.memory_used_mb -= config.memory_mb
                return
        raise KeyError(f"function {function_name!r} is not placed on node {self.name!r}")

    # -- utilisation -----------------------------------------------------------
    @property
    def cpu_utilization(self) -> float:
        """Fraction of CPU capacity in use."""
        return self.vcpu_used / self.vcpu_capacity

    @property
    def memory_utilization(self) -> float:
        """Fraction of memory capacity in use."""
        return self.memory_used_mb / self.memory_capacity_mb

    @property
    def imbalance(self) -> float:
        """Absolute gap between CPU and memory utilisation.

        A node packed only with CPU-hungry containers strands memory (and
        vice versa); affinity-aware placement tries to keep this gap small.
        """
        return abs(self.cpu_utilization - self.memory_utilization)


class Cluster:
    """A fixed set of nodes accepting container placements."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self._nodes: Dict[str, Node] = {node.name: node for node in nodes}

    @classmethod
    def homogeneous(
        cls, n_nodes: int, vcpu_per_node: float = 16.0, memory_per_node_mb: float = 65536.0
    ) -> "Cluster":
        """Build a cluster of identical nodes."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be at least 1")
        nodes = [
            Node(name=f"node-{i}", vcpu_capacity=vcpu_per_node, memory_capacity_mb=memory_per_node_mb)
            for i in range(n_nodes)
        ]
        return cls(nodes)

    # -- accessors --------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes."""
        return list(self._nodes.values())

    def node(self, name: str) -> Node:
        """Look up one node by name."""
        return self._nodes[name]

    @property
    def total_vcpu_capacity(self) -> float:
        """Aggregate CPU capacity."""
        return sum(n.vcpu_capacity for n in self._nodes.values())

    @property
    def total_memory_capacity_mb(self) -> float:
        """Aggregate memory capacity."""
        return sum(n.memory_capacity_mb for n in self._nodes.values())

    @property
    def total_healthy_vcpu_capacity(self) -> float:
        """Aggregate CPU capacity over nodes currently accepting placements."""
        return sum(n.vcpu_capacity for n in self._nodes.values() if n.healthy)

    @property
    def total_healthy_memory_capacity_mb(self) -> float:
        """Aggregate memory capacity over nodes currently accepting placements."""
        return sum(n.memory_capacity_mb for n in self._nodes.values() if n.healthy)

    @property
    def is_heterogeneous(self) -> bool:
        """Whether nodes differ in shape (capacity, pricing, or spot status)."""
        shapes = {
            (n.vcpu_capacity, n.memory_capacity_mb, n.price_multiplier, n.spot)
            for n in self._nodes.values()
        }
        return len(shapes) > 1

    def placement_of(self, function_name: str) -> Optional[str]:
        """Name of the node hosting a function's container, if any."""
        for node in self._nodes.values():
            if any(name == function_name for name, _ in node.placements):
                return node.name
        return None

    def utilization_summary(self) -> Dict[str, Tuple[float, float]]:
        """Per-node (cpu, memory) utilisation fractions."""
        return {
            name: (node.cpu_utilization, node.memory_utilization)
            for name, node in self._nodes.items()
        }

    def mean_imbalance(self) -> float:
        """Average CPU/memory utilisation gap across nodes hosting containers."""
        occupied = [n for n in self._nodes.values() if n.placements]
        if not occupied:
            return 0.0
        return sum(n.imbalance for n in occupied) / len(occupied)

    # -- failure model ----------------------------------------------------------
    def fail_node(self, name: str) -> List[str]:
        """Take one node down, evicting every resident container.

        Returns the names of the evicted placements so the serving layer can
        reschedule the affected requests.  Failing an already-down node is a
        no-op returning an empty list.
        """
        node = self._nodes[name]
        if not node.healthy:
            return []
        evicted = [placement_name for placement_name, _ in node.placements]
        node.placements.clear()
        node.vcpu_used = 0.0
        node.memory_used_mb = 0.0
        node.healthy = False
        return evicted

    def restore_node(self, name: str) -> None:
        """Bring a failed node back (empty, with its full capacity)."""
        self._nodes[name].healthy = True

    @property
    def healthy_nodes(self) -> List[Node]:
        """Nodes currently accepting placements."""
        return [node for node in self._nodes.values() if node.healthy]

    def reset(self) -> None:
        """Remove all placements (and bring failed nodes back up)."""
        for node in self._nodes.values():
            node.placements.clear()
            node.vcpu_used = 0.0
            node.memory_used_mb = 0.0
            node.healthy = True


def affinity_aware_placement(
    cluster: Cluster,
    configuration: WorkflowConfiguration,
    affinities: Optional[Mapping[str, str]] = None,
) -> Dict[str, str]:
    """Place one container per function, balancing CPU vs memory pressure.

    The policy scores each candidate node by the CPU/memory utilisation
    imbalance it would have *after* hosting the container and picks the node
    that minimises it (ties broken by lower total utilisation, then name).
    Containers are considered in decreasing order of their dominant resource
    share so the large ones are placed while the most freedom remains.

    Parameters
    ----------
    cluster:
        The target cluster (mutated: placements are recorded on its nodes).
    configuration:
        Function → resource allocation to place.
    affinities:
        Optional function → affinity-label mapping (e.g. ``"cpu-bound"``);
        only used to prefer spreading same-affinity containers across nodes.

    Returns
    -------
    dict
        Function name → node name.

    Raises
    ------
    PlacementError
        If some container fits on no node.
    """
    affinities = dict(affinities or {})

    # Normalise by the capacity actually available: failed nodes cannot host
    # containers, and counting them shrinks every share by the same *absolute*
    # amount — which reorders heterogeneous configs whose dominant dimension
    # differs (the cpu- and memory-capacity pools shrink by different factors).
    cpu_capacity = cluster.total_healthy_vcpu_capacity
    mem_capacity = cluster.total_healthy_memory_capacity_mb
    if cpu_capacity <= 0 or mem_capacity <= 0:
        cpu_capacity = cluster.total_vcpu_capacity
        mem_capacity = cluster.total_memory_capacity_mb

    def dominant_share(config: ResourceConfig) -> float:
        cpu_share = config.vcpu / cpu_capacity
        mem_share = config.memory_mb / mem_capacity
        return max(cpu_share, mem_share)

    assignment: Dict[str, str] = {}
    ordered = sorted(
        configuration.items(), key=lambda item: (-dominant_share(item[1]), item[0])
    )
    for function_name, config in ordered:
        best_node: Optional[Node] = None
        best_key: Optional[Tuple[float, float, int, str]] = None
        for node in cluster.nodes:
            if not node.can_fit(config):
                continue
            projected_cpu = (node.vcpu_used + config.vcpu) / node.vcpu_capacity
            projected_mem = (node.memory_used_mb + config.memory_mb) / node.memory_capacity_mb
            imbalance = abs(projected_cpu - projected_mem)
            same_affinity = sum(
                1
                for placed_name, _ in node.placements
                if affinities.get(placed_name) is not None
                and affinities.get(placed_name) == affinities.get(function_name)
            )
            key = (
                round(imbalance, 9),
                round(projected_cpu + projected_mem, 9),
                same_affinity,
                node.name,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_node = node
        if best_node is None:
            raise PlacementError(
                f"no node can host container for {function_name!r} ({config.describe()})"
            )
        best_node.place(function_name, config)
        assignment[function_name] = best_node.name
    return assignment

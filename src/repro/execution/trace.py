"""Execution trace records produced by the simulator."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workflow.resources import ResourceConfig

__all__ = ["ExecutionStatus", "FunctionExecution", "ExecutionTrace"]


class ExecutionStatus(enum.Enum):
    """Outcome of one function invocation."""

    SUCCESS = "success"
    OOM = "oom"
    SKIPPED = "skipped"  # upstream failure prevented the invocation


@dataclass(frozen=True)
class FunctionExecution:
    """One function invocation within a workflow execution.

    Attributes
    ----------
    function_name:
        Name of the invoked function.
    config:
        Resource allocation of the invocation's container.
    start_time / finish_time:
        Simulated wall-clock timestamps in seconds relative to the workflow
        trigger; a skipped invocation has ``start_time == finish_time``.
    runtime_seconds:
        Billable duration (includes the cold start when one was paid).
    cost:
        Monetary cost of the invocation under the experiment's pricing model.
    status:
        Success / OOM / skipped.
    cold_start:
        Whether the invocation paid a container cold start.
    cold_start_seconds:
        The cold-start latency included in ``runtime_seconds``.
    input_scale:
        Relative input size used for this invocation.
    """

    function_name: str
    config: ResourceConfig
    start_time: float
    finish_time: float
    runtime_seconds: float
    cost: float
    status: ExecutionStatus = ExecutionStatus.SUCCESS
    cold_start: bool = False
    cold_start_seconds: float = 0.0
    input_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.runtime_seconds < 0 or self.cost < 0:
            raise ValueError("runtime_seconds and cost must be non-negative")
        if self.finish_time + 1e-12 < self.start_time:
            raise ValueError("finish_time cannot precede start_time")

    @property
    def succeeded(self) -> bool:
        """Whether the invocation completed successfully."""
        return self.status is ExecutionStatus.SUCCESS


@dataclass
class ExecutionTrace:
    """Full record of one simulated workflow execution."""

    workflow_name: str
    records: Dict[str, FunctionExecution] = field(default_factory=dict)
    input_scale: float = 1.0

    def add(self, record: FunctionExecution) -> None:
        """Append one function invocation record."""
        if record.function_name in self.records:
            raise ValueError(f"duplicate record for function {record.function_name!r}")
        self.records[record.function_name] = record

    # -- outcome -------------------------------------------------------------
    @property
    def succeeded(self) -> bool:
        """Whether every function invocation succeeded."""
        return bool(self.records) and all(r.succeeded for r in self.records.values())

    @property
    def failed_functions(self) -> List[str]:
        """Names of functions that did not complete successfully."""
        return [name for name, r in self.records.items() if not r.succeeded]

    @property
    def end_to_end_latency(self) -> float:
        """Completion time of the last finishing function."""
        if not self.records:
            return 0.0
        return max(r.finish_time for r in self.records.values())

    @property
    def total_cost(self) -> float:
        """Sum of per-invocation costs."""
        return sum(r.cost for r in self.records.values())

    @property
    def total_billed_seconds(self) -> float:
        """Sum of billable durations across invocations."""
        return sum(r.runtime_seconds for r in self.records.values())

    @property
    def cold_start_count(self) -> int:
        """Number of invocations that paid a cold start."""
        return sum(1 for r in self.records.values() if r.cold_start)

    def shifted(self, offset: float) -> "ExecutionTrace":
        """A copy with every timestamp moved by ``offset`` seconds.

        The simulator computes all start/finish times relative to the trigger,
        so shifting a trigger-0 trace by an arrival time is exactly the trace
        the same execution would have produced at that arrival — which lets
        serving layers memoize trigger-0 traces and replay them at any time.
        """
        if offset == 0.0:
            return self
        shifted = ExecutionTrace(workflow_name=self.workflow_name, input_scale=self.input_scale)
        for record in self.records.values():
            shifted.add(
                dataclasses.replace(
                    record,
                    start_time=record.start_time + offset,
                    finish_time=record.finish_time + offset,
                )
            )
        return shifted

    # -- views ---------------------------------------------------------------
    def runtimes(self) -> Dict[str, float]:
        """Per-function billable runtimes."""
        return {name: r.runtime_seconds for name, r in self.records.items()}

    def record(self, function_name: str) -> FunctionExecution:
        """Look up the record of one function (KeyError if absent)."""
        return self.records[function_name]

    def function_names(self) -> List[str]:
        """Functions appearing in the trace, ordered by start time."""
        return [
            name
            for name, _ in sorted(
                self.records.items(), key=lambda item: (item[1].start_time, item[0])
            )
        ]

    def critical_path_estimate(self) -> List[str]:
        """Functions whose finish time chain determines the latency.

        Walks back from the last-finishing function through the predecessor
        whose finish time equals this function's start time.  This is a trace
        level approximation; the authoritative analysis lives in
        :mod:`repro.core.critical_path`.
        """
        if not self.records:
            return []
        ordered = sorted(self.records.values(), key=lambda r: (r.finish_time, r.function_name))
        path: List[str] = []
        cursor: Optional[FunctionExecution] = ordered[-1]
        while cursor is not None:
            path.append(cursor.function_name)
            if cursor.start_time <= 1e-12:
                break
            candidates = [
                r
                for r in self.records.values()
                if abs(r.finish_time - cursor.start_time) <= 1e-9
                and r.function_name != cursor.function_name
            ]
            cursor = min(candidates, key=lambda r: r.function_name) if candidates else None
        path.reverse()
        return path

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "ok" if self.succeeded else f"FAILED({','.join(self.failed_functions)})"
        return (
            f"{self.workflow_name}: latency={self.end_to_end_latency:.2f}s "
            f"cost={self.total_cost:.1f} cold_starts={self.cold_start_count} [{status}]"
        )

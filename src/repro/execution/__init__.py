"""Serverless execution simulator.

Stands in for the paper's Docker-on-Xeon testbed.  Given a workflow, a
per-function resource configuration and a performance model, the simulator
produces an execution trace: per-function runtimes and costs, start/finish
times respecting the DAG's dependencies, end-to-end latency, cold starts and
failures (out-of-memory).  A small cluster model provides affinity-aware
container co-location for platform-level studies.
"""

from repro.execution.trace import ExecutionStatus, ExecutionTrace, FunctionExecution
from repro.execution.container import Container, ContainerPool
from repro.execution.cluster import Cluster, Node, PlacementError, affinity_aware_placement
from repro.execution.executor import ExecutorOptions, WorkflowExecutor
from repro.execution.backend import (
    BACKEND_NAMES,
    BackendStats,
    CachingBackend,
    EvaluationBackend,
    ParallelBackend,
    SimulatorBackend,
    build_backend,
)
from repro.execution.vectorized import (
    BatchOutcome,
    VectorizedBackend,
    VectorizedWorkflowEngine,
)
from repro.execution.events import (
    EventLoop,
    RequestArrival,
    RequestOutcome,
    RequestStreamSimulator,
)
from repro.execution.faults import (
    FAULT_PROFILE_NAMES,
    ExponentialBackoffRetry,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FixedRetry,
    InvocationOutcome,
    NoRetry,
    RetryPolicy,
    get_fault_profile,
)
from repro.execution.serving import (
    AutoscalerOptions,
    ServedRequest,
    ServingMetrics,
    ServingOptions,
    ServingResult,
    ServingSimulator,
)

__all__ = [
    "ExecutionStatus",
    "ExecutionTrace",
    "FunctionExecution",
    "Container",
    "ContainerPool",
    "BACKEND_NAMES",
    "BackendStats",
    "EvaluationBackend",
    "SimulatorBackend",
    "CachingBackend",
    "ParallelBackend",
    "BatchOutcome",
    "VectorizedBackend",
    "VectorizedWorkflowEngine",
    "build_backend",
    "Cluster",
    "Node",
    "PlacementError",
    "affinity_aware_placement",
    "ExecutorOptions",
    "WorkflowExecutor",
    "EventLoop",
    "RequestArrival",
    "RequestOutcome",
    "RequestStreamSimulator",
    "FAULT_PROFILE_NAMES",
    "ExponentialBackoffRetry",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FixedRetry",
    "InvocationOutcome",
    "NoRetry",
    "RetryPolicy",
    "get_fault_profile",
    "AutoscalerOptions",
    "ServedRequest",
    "ServingMetrics",
    "ServingOptions",
    "ServingResult",
    "ServingSimulator",
]

"""Container and warm-pool model.

Serverless platforms keep recently used containers warm for a keep-alive
window; an invocation that finds a warm container with a matching resource
configuration skips the cold start.  The pool here is intentionally simple —
per (function, configuration) LRU with a fixed keep-alive — which is enough to
study how often the configuration search pays cold starts and to support the
request-stream simulator.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.workflow.resources import ResourceConfig

__all__ = ["Container", "ContainerPool"]


@dataclass
class Container:
    """A (possibly warm) container bound to one function and configuration."""

    container_id: int
    function_name: str
    config: ResourceConfig
    created_at: float
    last_used_at: float
    invocations: int = 0
    node_name: Optional[str] = None

    def record_invocation(self, finish_time: float) -> None:
        """Mark the container as used until ``finish_time``."""
        if finish_time < self.last_used_at - 1e-9:
            raise ValueError("finish_time cannot move backwards")
        self.last_used_at = finish_time
        self.invocations += 1

    def is_warm_at(self, timestamp: float, keep_alive_seconds: float) -> bool:
        """Whether the container is still warm at ``timestamp``."""
        return timestamp - self.last_used_at <= keep_alive_seconds


@dataclass
class _PoolStats:
    cold_starts: int = 0
    warm_hits: int = 0
    evictions: int = 0
    fault_kills: int = 0


class ContainerPool:
    """Warm-container pool keyed by (function, configuration).

    Idle containers are indexed three ways: an insertion-ordered
    id → container map per function (pool membership), a per-function
    min-heap of ``(expiry time, container id)`` entries, and per-function
    buckets keyed by exact configuration.  Expiry is processed lazily from
    the heap — O(log n) per *actually expired* container instead of a
    full-pool rescan per event — and the warm-match lookup in
    :meth:`acquire` only scans the bucket of the requested configuration, so
    autoscaled pools holding many differently-configured containers (e.g.
    input-aware serving) no longer pay a whole-pool scan per request.  Heap
    entries are never removed eagerly; a stale entry (container re-released
    later, checked out, discarded or capacity-evicted) is skipped when
    popped.

    Parameters
    ----------
    keep_alive_seconds:
        How long an idle container stays warm.
    max_containers_per_function:
        Cap on simultaneously retained containers per function (oldest idle
        containers are evicted first).
    """

    def __init__(
        self,
        keep_alive_seconds: float = 600.0,
        max_containers_per_function: int = 16,
    ) -> None:
        if keep_alive_seconds < 0:
            raise ValueError("keep_alive_seconds must be non-negative")
        if max_containers_per_function < 1:
            raise ValueError("max_containers_per_function must be at least 1")
        self.keep_alive_seconds = float(keep_alive_seconds)
        self.max_containers_per_function = int(max_containers_per_function)
        self._containers: Dict[str, Dict[int, Container]] = {}
        self._by_config: Dict[str, Dict[ResourceConfig, Dict[int, Container]]] = {}
        self._expiry_heaps: Dict[str, List[Tuple[float, int]]] = {}
        self._id_counter = itertools.count(1)
        self._stats = _PoolStats()

    # -- index maintenance -----------------------------------------------------
    def _insert(self, container: Container) -> None:
        function_name = container.function_name
        self._containers.setdefault(function_name, {})[container.container_id] = container
        self._by_config.setdefault(function_name, {}).setdefault(
            container.config, {}
        )[container.container_id] = container

    def _remove(self, container: Container) -> None:
        function_name = container.function_name
        pool = self._containers.get(function_name)
        if pool is not None:
            pool.pop(container.container_id, None)
        buckets = self._by_config.get(function_name)
        if buckets is not None:
            bucket = buckets.get(container.config)
            if bucket is not None:
                bucket.pop(container.container_id, None)
                if not bucket:
                    del buckets[container.config]

    # -- acquisition -----------------------------------------------------------
    def acquire(
        self, function_name: str, config: ResourceConfig, timestamp: float
    ) -> Tuple[Container, bool]:
        """Obtain a container for an invocation starting at ``timestamp``.

        Returns ``(container, cold_start)``.  A warm container is reused only
        when its configuration matches exactly (platforms recycle containers
        per configuration revision); the most recently used match wins.  The
        container is *checked out*: it leaves the pool until :meth:`release`
        returns it, so concurrent invocations can never share one container.
        """
        self._evict_expired(function_name, timestamp)
        bucket = self._by_config.get(function_name, {}).get(config, {})
        best: Optional[Container] = None
        for container in bucket.values():
            if container.is_warm_at(timestamp, self.keep_alive_seconds):
                if best is None or container.last_used_at > best.last_used_at:
                    best = container
        if best is not None:
            self._remove(best)
            self._stats.warm_hits += 1
            return best, False
        container = Container(
            container_id=next(self._id_counter),
            function_name=function_name,
            config=config,
            created_at=timestamp,
            last_used_at=timestamp,
        )
        self._stats.cold_starts += 1
        return container, True

    def release(self, container: Container, finish_time: float) -> None:
        """Return a checked-out container to the pool after an invocation.

        ``finish_time`` is clamped to the container's last use: configuration
        searches replay every evaluation from trigger time 0, so a reused
        warm container can legitimately observe an earlier finish time than
        its previous invocation.
        """
        container.record_invocation(max(finish_time, container.last_used_at))
        if container.container_id not in self._containers.get(container.function_name, {}):
            self._insert(container)
        heapq.heappush(
            self._expiry_heaps.setdefault(container.function_name, []),
            (container.last_used_at + self.keep_alive_seconds, container.container_id),
        )
        self._enforce_capacity(container.function_name)

    def discard(self, container: Container) -> None:
        """Forcibly remove a pool-resident container (counted as an eviction).

        The executor itself never needs this — checked-out containers that
        die (OOM) are simply never released — but platform-level studies
        (node drains, config rollouts) use it to retire idle warm containers.
        Discarding a checked-out or already-evicted container is a no-op.
        """
        pool = self._containers.get(container.function_name)
        if pool is None or container.container_id not in pool:
            return
        self._remove(container)
        self._stats.evictions += 1

    def evict_node(self, node_name: str) -> int:
        """Discard every idle warm container resident on one node.

        Node failures and spot evictions destroy the warm state living on
        the node.  Checked-out containers die through :meth:`kill` on the
        fault path; this retires the *idle* ones so a request never takes a
        warm start from a machine that is gone.  Containers with no recorded
        ``node_name`` are untouched.  Returns the number evicted.
        """
        victims = [
            container
            for pool in self._containers.values()
            for container in pool.values()
            if container.node_name == node_name
        ]
        for container in victims:
            self._remove(container)
        self._stats.evictions += len(victims)
        return len(victims)

    def kill(self, container: Container) -> None:
        """Record the fault-kill of a checked-out container.

        The fault layer destroys containers mid-invocation (crashes,
        transient OOM, timeout kills, node failures).  A checked-out
        container is not pool-resident, so there is nothing to remove — the
        call just counts the kill; if the container somehow is resident it
        is removed as well so a dead container never serves a warm start.
        """
        resident = self._containers.get(container.function_name, {})
        if container.container_id in resident:
            self._remove(container)
        self._stats.fault_kills += 1

    # -- maintenance -----------------------------------------------------------
    def _evict_expired(self, function_name: str, timestamp: float) -> None:
        """Pop expired heap entries; skip stale ones, re-queue still-warm ones.

        An entry can be stale in two ways: its container left the pool
        (checked out, discarded, capacity-evicted), or it was re-released
        later so a fresher entry with a later expiry also sits in the heap.
        Warmth is always re-checked against the container itself, so this
        evicts exactly the containers a full scan would.
        """
        heap = self._expiry_heaps.get(function_name)
        if not heap:
            return
        pool = self._containers.get(function_name, {})
        still_warm: List[Tuple[float, int]] = []
        while heap and heap[0][0] <= timestamp:
            _, container_id = heapq.heappop(heap)
            container = pool.get(container_id)
            if container is None:
                continue  # stale entry: container no longer pool-resident
            if container.is_warm_at(timestamp, self.keep_alive_seconds):
                # Boundary / stale-but-refreshed entry: keep the container.
                still_warm.append(
                    (container.last_used_at + self.keep_alive_seconds, container_id)
                )
                continue
            self._remove(container)
            self._stats.evictions += 1
        for entry in still_warm:
            heapq.heappush(heap, entry)

    def _enforce_capacity(self, function_name: str) -> None:
        pool = self._containers.get(function_name, {})
        excess = len(pool) - self.max_containers_per_function
        if excess > 0:
            oldest = sorted(pool.values(), key=lambda c: c.last_used_at)[:excess]
            for container in oldest:
                self._remove(container)
            self._stats.evictions += excess

    def resize(self, max_containers_per_function: int) -> int:
        """Change the per-function warm-pool cap (autoscaler entry point).

        Shrinking immediately evicts the oldest idle containers of every
        function down to the new cap; growing just raises the cap (new warm
        containers appear as invocations are released).  Checked-out
        containers are unaffected either way.  Returns the number of
        containers evicted by the shrink.
        """
        if max_containers_per_function < 1:
            raise ValueError("max_containers_per_function must be at least 1")
        before = self._stats.evictions
        self.max_containers_per_function = int(max_containers_per_function)
        for function_name in list(self._containers):
            self._enforce_capacity(function_name)
        return self._stats.evictions - before

    def retarget(self, configuration: Mapping[str, ResourceConfig]) -> int:
        """Retire idle warm containers that a config rollout made useless.

        When the serving layer switches a workflow to a new configuration
        (adaptive re-tune promote or rollback), warm containers built for the
        *old* per-function configurations can never serve a warm start again
        — acquisition matches configurations exactly — yet they would sit in
        the pool until keep-alive expiry, occupying capacity slots.  This
        discards every idle container of the named functions whose
        configuration differs from the new target (counted as evictions).
        Checked-out containers are untouched: in-flight requests finish on
        the configuration they started with.  Returns the number evicted.
        """
        evicted = 0
        for function_name, target in configuration.items():
            buckets = self._by_config.get(function_name)
            if not buckets:
                continue
            for config in list(buckets):
                if config == target:
                    continue
                for container in list(buckets[config].values()):
                    self.discard(container)
                    evicted += 1
        return evicted

    def clear(self) -> None:
        """Drop all containers (used between independent experiments)."""
        self._containers.clear()
        self._by_config.clear()
        self._expiry_heaps.clear()

    # -- inspection -----------------------------------------------------------
    def warm_count(self, function_name: str, timestamp: float) -> int:
        """Number of warm containers for a function at a point in time."""
        return sum(
            1
            for c in self._containers.get(function_name, {}).values()
            if c.is_warm_at(timestamp, self.keep_alive_seconds)
        )

    @property
    def cold_starts(self) -> int:
        """Total cold starts paid since construction."""
        return self._stats.cold_starts

    @property
    def warm_hits(self) -> int:
        """Total warm-container reuses since construction."""
        return self._stats.warm_hits

    @property
    def evictions(self) -> int:
        """Total containers evicted (expiry, capacity and forced discards)."""
        return self._stats.evictions

    @property
    def fault_kills(self) -> int:
        """Total checked-out containers destroyed by injected faults."""
        return self._stats.fault_kills

"""Container and warm-pool model.

Serverless platforms keep recently used containers warm for a keep-alive
window; an invocation that finds a warm container with a matching resource
configuration skips the cold start.  The pool here is intentionally simple —
per (function, configuration) LRU with a fixed keep-alive — which is enough to
study how often the configuration search pays cold starts and to support the
request-stream simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workflow.resources import ResourceConfig

__all__ = ["Container", "ContainerPool"]


@dataclass
class Container:
    """A (possibly warm) container bound to one function and configuration."""

    container_id: int
    function_name: str
    config: ResourceConfig
    created_at: float
    last_used_at: float
    invocations: int = 0
    node_name: Optional[str] = None

    def record_invocation(self, finish_time: float) -> None:
        """Mark the container as used until ``finish_time``."""
        if finish_time < self.last_used_at - 1e-9:
            raise ValueError("finish_time cannot move backwards")
        self.last_used_at = finish_time
        self.invocations += 1

    def is_warm_at(self, timestamp: float, keep_alive_seconds: float) -> bool:
        """Whether the container is still warm at ``timestamp``."""
        return timestamp - self.last_used_at <= keep_alive_seconds


@dataclass
class _PoolStats:
    cold_starts: int = 0
    warm_hits: int = 0
    evictions: int = 0


class ContainerPool:
    """Warm-container pool keyed by (function, configuration).

    Parameters
    ----------
    keep_alive_seconds:
        How long an idle container stays warm.
    max_containers_per_function:
        Cap on simultaneously retained containers per function (oldest idle
        containers are evicted first).
    """

    def __init__(
        self,
        keep_alive_seconds: float = 600.0,
        max_containers_per_function: int = 16,
    ) -> None:
        if keep_alive_seconds < 0:
            raise ValueError("keep_alive_seconds must be non-negative")
        if max_containers_per_function < 1:
            raise ValueError("max_containers_per_function must be at least 1")
        self.keep_alive_seconds = float(keep_alive_seconds)
        self.max_containers_per_function = int(max_containers_per_function)
        self._containers: Dict[str, List[Container]] = {}
        self._id_counter = itertools.count(1)
        self._stats = _PoolStats()

    # -- acquisition -----------------------------------------------------------
    def acquire(
        self, function_name: str, config: ResourceConfig, timestamp: float
    ) -> Tuple[Container, bool]:
        """Obtain a container for an invocation starting at ``timestamp``.

        Returns ``(container, cold_start)``.  A warm container is reused only
        when its configuration matches exactly (platforms recycle containers
        per configuration revision).  The container is *checked out*: it
        leaves the pool until :meth:`release` returns it, so concurrent
        invocations can never share one container.
        """
        self._evict_expired(function_name, timestamp)
        pool = self._containers.setdefault(function_name, [])
        for container in sorted(pool, key=lambda c: -c.last_used_at):
            if container.config == config and container.is_warm_at(
                timestamp, self.keep_alive_seconds
            ):
                pool.remove(container)
                self._stats.warm_hits += 1
                return container, False
        container = Container(
            container_id=next(self._id_counter),
            function_name=function_name,
            config=config,
            created_at=timestamp,
            last_used_at=timestamp,
        )
        self._stats.cold_starts += 1
        return container, True

    def release(self, container: Container, finish_time: float) -> None:
        """Return a checked-out container to the pool after an invocation.

        ``finish_time`` is clamped to the container's last use: configuration
        searches replay every evaluation from trigger time 0, so a reused
        warm container can legitimately observe an earlier finish time than
        its previous invocation.
        """
        container.record_invocation(max(finish_time, container.last_used_at))
        pool = self._containers.setdefault(container.function_name, [])
        if container not in pool:
            pool.append(container)
        self._enforce_capacity(container.function_name)

    def discard(self, container: Container) -> None:
        """Forcibly remove a pool-resident container (counted as an eviction).

        The executor itself never needs this — checked-out containers that
        die (OOM) are simply never released — but platform-level studies
        (node drains, config rollouts) use it to retire idle warm containers.
        Discarding a checked-out or already-evicted container is a no-op.
        """
        pool = self._containers.get(container.function_name)
        if pool is None:
            return
        try:
            pool.remove(container)
        except ValueError:
            return
        self._stats.evictions += 1

    # -- maintenance -----------------------------------------------------------
    def _evict_expired(self, function_name: str, timestamp: float) -> None:
        pool = self._containers.get(function_name, [])
        kept = [c for c in pool if c.is_warm_at(timestamp, self.keep_alive_seconds)]
        self._stats.evictions += len(pool) - len(kept)
        self._containers[function_name] = kept

    def _enforce_capacity(self, function_name: str) -> None:
        pool = self._containers.get(function_name, [])
        excess = len(pool) - self.max_containers_per_function
        if excess > 0:
            pool.sort(key=lambda c: c.last_used_at)
            del pool[:excess]
            self._stats.evictions += excess

    def resize(self, max_containers_per_function: int) -> int:
        """Change the per-function warm-pool cap (autoscaler entry point).

        Shrinking immediately evicts the oldest idle containers of every
        function down to the new cap; growing just raises the cap (new warm
        containers appear as invocations are released).  Checked-out
        containers are unaffected either way.  Returns the number of
        containers evicted by the shrink.
        """
        if max_containers_per_function < 1:
            raise ValueError("max_containers_per_function must be at least 1")
        before = self._stats.evictions
        self.max_containers_per_function = int(max_containers_per_function)
        for function_name in list(self._containers):
            self._enforce_capacity(function_name)
        return self._stats.evictions - before

    def clear(self) -> None:
        """Drop all containers (used between independent experiments)."""
        self._containers.clear()

    # -- inspection -----------------------------------------------------------
    def warm_count(self, function_name: str, timestamp: float) -> int:
        """Number of warm containers for a function at a point in time."""
        return sum(
            1
            for c in self._containers.get(function_name, [])
            if c.is_warm_at(timestamp, self.keep_alive_seconds)
        )

    @property
    def cold_starts(self) -> int:
        """Total cold starts paid since construction."""
        return self._stats.cold_starts

    @property
    def warm_hits(self) -> int:
        """Total warm-container reuses since construction."""
        return self._stats.warm_hits

    @property
    def evictions(self) -> int:
        """Total containers evicted (expiry, capacity and forced discards)."""
        return self._stats.evictions

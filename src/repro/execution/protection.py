"""Graceful degradation for the serving layer: admit, break, shed, hedge, bound.

PR 4 gave the serving layer its *offense* — seed-deterministic fault
injection with retries — but no *defense*: under overload or sustained
faults the only relief valves are queue-capacity drops and blind retries,
so goodput collapses instead of degrading.  This module adds the
protection mechanisms real FaaS fleets run in front of their dispatchers:

* **Admission control** — reject at arrival when an in-flight token budget
  is exhausted or the estimated queueing delay would blow the request's
  end-to-end deadline (better a fast rejection than a guaranteed SLO miss).
* **Per-function circuit breakers** — a closed → open → half-open state
  machine keyed on a rolling, time-windowed failure rate fed by the fault
  path; an open breaker fails requests fast, and recovery is probed with a
  deterministic counter-based budget (no randomized probe scheduling).
* **Priority-aware load shedding** — under sustained queue pressure the
  lowest-priority input classes are shed first and restored hysteretically
  (two watermarks plus dwell times) so the system never flaps.
* **Request hedging** — when an invocation's planned duration exceeds the
  function's rolling straggler percentile, a deterministic backup attempt
  races it; first completion wins and the loser is billed as wasted work.
* **Deadline propagation** — an end-to-end SLO is split into per-stage
  timeout budgets along the DAG's critical path, replacing the fault
  plan's flat per-function timeout.

Everything is declarative data (:class:`ProtectionPolicy`) plus a runtime
(:class:`ProtectionGuard`) owned by one serving run.  Every decision is a
pure function of observed event times and the policy's seed — no wall
clock, no shared RNG — so protected runs are bit-reproducible.  An *empty*
policy (:meth:`ProtectionPolicy.is_empty`) guards nothing: the serving
layer routes such runs through its unperturbed code path, byte-identical
to a run with no policy at all, mirroring the empty-fault-plan invariant.
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.execution.faults import FaultKind, InvocationOutcome

__all__ = [
    "REJECTION_CAUSES",
    "AdmissionControlConfig",
    "CircuitBreakerConfig",
    "LoadSheddingConfig",
    "HedgingConfig",
    "DeadlineConfig",
    "ProtectionPolicy",
    "ProtectionGuard",
    "split_deadline",
    "PROTECTION_PROFILE_NAMES",
    "get_protection_profile",
]


#: Rejection causes the serving layer distinguishes, in reporting order.
#: ``queue-full`` covers the pre-existing drops (queue overflow and
#: never-hostable requests); the other four are protection verdicts.
REJECTION_CAUSES: Tuple[str, ...] = (
    "queue-full",
    "admission",
    "shed",
    "breaker",
    "deadline",
)


def _nearest_rank(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over ``values`` (mirrors ``serving.percentile``).

    Re-implemented locally because :mod:`repro.execution.serving` imports
    this module; importing back would be circular.
    """
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


# -- mechanism configs -------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionControlConfig:
    """Reject at arrival when serving the request is already hopeless.

    Attributes
    ----------
    max_inflight_requests:
        Token budget: an arrival is rejected (cause ``admission``) when the
        requests already dispatched plus queued reach this bound.
    max_estimated_wait_seconds:
        Static bound on the estimated queueing delay (cause ``admission``).
    deadline_headroom:
        An arrival whose estimated wait plus one mean service time exceeds
        ``deadline_headroom ×`` the end-to-end deadline is rejected with
        cause ``deadline`` — admitting it could only produce an SLO miss.
        The estimate is ``queue_len × mean_service / max(1, active)``, i.e.
        the queue drained at the currently observed parallel service rate.
        Before any completion lands, the mean service floor is the age of
        the oldest still-running request, so slow-to-complete overloads
        (service times longer than the arrival horizon) are still caught.
    """

    max_inflight_requests: Optional[int] = None
    max_estimated_wait_seconds: Optional[float] = None
    deadline_headroom: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_inflight_requests is not None and self.max_inflight_requests < 1:
            raise ValueError("max_inflight_requests must be at least 1")
        if (
            self.max_estimated_wait_seconds is not None
            and self.max_estimated_wait_seconds < 0
        ):
            raise ValueError("max_estimated_wait_seconds must be non-negative")
        if self.deadline_headroom is not None and self.deadline_headroom <= 0:
            raise ValueError("deadline_headroom must be positive")


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Per-function closed / open / half-open breaker on the rolling kill rate.

    The window is *time*-based (``window_seconds``), not count-based, so the
    breaker's verdict is a function of attempt timestamps alone.  Attempts
    that land at the same instant are evaluated as one batch, which makes
    the state machine invariant under permutations of same-time records.
    Recovery probing is deterministic: after ``open_seconds`` the breaker
    goes half-open and admits exactly ``half_open_probes`` probe requests
    (a counter, not a coin flip); all probes succeeding closes it, any
    probe failing re-opens it.
    """

    window_seconds: float = 30.0
    failure_threshold: float = 0.5
    min_attempts: int = 5
    open_seconds: float = 30.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window_seconds <= 0 or self.open_seconds <= 0:
            raise ValueError("breaker windows must be positive")
        if not 0 < self.failure_threshold <= 1:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_attempts < 1:
            raise ValueError("min_attempts must be at least 1")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")


@dataclass(frozen=True)
class LoadSheddingConfig:
    """Shed low-priority input classes under sustained queue pressure.

    The shed level rises one priority step each time the queue has sat at
    or above ``queue_high`` for ``sustain_seconds``, and falls one step
    each time it has sat at or below ``queue_low`` for ``restore_seconds``
    — a two-watermark hysteresis with dwell, so a momentary spike sheds
    nothing and a momentary lull restores nothing.  A request whose class
    priority (``priorities``; default 0, higher = more important) is below
    the current level is rejected with cause ``shed``.
    """

    queue_high: int = 8
    queue_low: int = 2
    sustain_seconds: float = 5.0
    restore_seconds: float = 15.0
    priorities: Optional[Mapping[str, int]] = None

    def __post_init__(self) -> None:
        if self.queue_high < 1:
            raise ValueError("queue_high must be at least 1")
        if not 0 <= self.queue_low < self.queue_high:
            raise ValueError("need 0 <= queue_low < queue_high")
        if self.sustain_seconds < 0 or self.restore_seconds < 0:
            raise ValueError("dwell times must be non-negative")


@dataclass(frozen=True)
class HedgingConfig:
    """Race a deterministic backup attempt against planned stragglers.

    An attempt whose planned duration exceeds the function's rolling
    ``straggler_percentile`` (over the last ``history`` completed-attempt
    durations, once ``min_observations`` have been seen) gets a hedge
    launched at the percentile mark; first completion wins, the loser is
    cancelled and billed as wasted work.
    """

    straggler_percentile: float = 95.0
    min_observations: int = 20
    max_hedges_per_request: int = 1
    history: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.straggler_percentile < 100:
            raise ValueError("straggler_percentile must be in (0, 100)")
        if self.min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        if self.max_hedges_per_request < 1:
            raise ValueError("max_hedges_per_request must be at least 1")
        if self.history < self.min_observations:
            raise ValueError("history must be at least min_observations")


@dataclass(frozen=True)
class DeadlineConfig:
    """Split an end-to-end deadline into per-stage budgets (critical path).

    The total budget is ``total_budget_seconds`` if given, else
    ``slo_fraction ×`` the run's SLO latency limit.  Each function's budget
    is its cold-start latency plus its runtime share of the critical path
    scaled to the total (see :func:`split_deadline`); an attempt exceeding
    its stage budget is killed exactly like a fault-plan timeout — and
    retried under the plan's retry policy.
    """

    total_budget_seconds: Optional[float] = None
    slo_fraction: float = 1.0
    stage_slack: float = 1.0

    def __post_init__(self) -> None:
        if self.total_budget_seconds is not None and self.total_budget_seconds <= 0:
            raise ValueError("total_budget_seconds must be positive (or None)")
        if self.slo_fraction <= 0:
            raise ValueError("slo_fraction must be positive")
        if self.stage_slack <= 0:
            raise ValueError("stage_slack must be positive")


# -- the policy --------------------------------------------------------------------


@dataclass(frozen=True)
class ProtectionPolicy:
    """Declarative description of one serving run's protection mechanisms.

    Each mechanism is independently optional; :meth:`is_empty` is true when
    none is configured, and the serving layer keeps such runs on the
    untouched (byte-identical) code path.  ``seed`` roots the deterministic
    streams a protected-but-fault-free run needs (the injector it borrows
    uses an empty plan at this seed).
    """

    admission: Optional[AdmissionControlConfig] = None
    breaker: Optional[CircuitBreakerConfig] = None
    shedding: Optional[LoadSheddingConfig] = None
    hedging: Optional[HedgingConfig] = None
    deadline: Optional[DeadlineConfig] = None
    seed: int = 2025

    @classmethod
    def none(cls, seed: int = 2025) -> "ProtectionPolicy":
        """The empty policy: protects nothing, perturbs nothing."""
        return cls(seed=seed)

    @classmethod
    def for_tenants(
        cls,
        priorities: Mapping[str, int],
        queue_high: int = 8,
        queue_low: int = 2,
        seed: int = 2025,
    ) -> "ProtectionPolicy":
        """A shedding-only policy keyed by *tenant* name.

        Fleet serving passes the tenant name as the guard's input class, so
        the hysteretic shedder drops the lowest-priority tenants first when
        the shared queue backs up — per-tenant shed priorities without any
        per-function machinery.
        """
        return cls(
            shedding=LoadSheddingConfig(
                queue_high=queue_high,
                queue_low=queue_low,
                priorities=dict(priorities),
            ),
            seed=seed,
        )

    @property
    def is_empty(self) -> bool:
        """Whether this policy can never influence a run."""
        return (
            self.admission is None
            and self.breaker is None
            and self.shedding is None
            and self.hedging is None
            and self.deadline is None
        )

    def with_seed(self, seed: int) -> "ProtectionPolicy":
        """Copy of this policy rooted at a different seed."""
        return dataclasses.replace(self, seed=int(seed))

    def with_priorities(
        self, priorities: Optional[Mapping[str, int]]
    ) -> "ProtectionPolicy":
        """Copy whose shedding config adopts ``priorities`` if it has none."""
        if (
            priorities is None
            or self.shedding is None
            or self.shedding.priorities is not None
        ):
            return self
        return dataclasses.replace(
            self,
            shedding=dataclasses.replace(self.shedding, priorities=dict(priorities)),
        )

    def describe(self) -> str:
        """Human-readable one-liner of the active mechanisms."""
        if self.is_empty:
            return "no protection"
        parts: List[str] = []
        if self.admission is not None:
            knobs = []
            if self.admission.max_inflight_requests is not None:
                knobs.append(f"inflight≤{self.admission.max_inflight_requests}")
            if self.admission.max_estimated_wait_seconds is not None:
                knobs.append(f"wait≤{self.admission.max_estimated_wait_seconds:g}s")
            if self.admission.deadline_headroom is not None:
                knobs.append(f"deadline×{self.admission.deadline_headroom:g}")
            parts.append("admission(" + ", ".join(knobs or ["noop"]) + ")")
        if self.breaker is not None:
            parts.append(
                f"breakers({self.breaker.failure_threshold * 100:g}% over "
                f"{self.breaker.window_seconds:g}s, open {self.breaker.open_seconds:g}s)"
            )
        if self.shedding is not None:
            parts.append(
                f"shedding(queue {self.shedding.queue_low}–{self.shedding.queue_high})"
            )
        if self.hedging is not None:
            parts.append(f"hedging(p{self.hedging.straggler_percentile:g})")
        if self.deadline is not None:
            budget = (
                f"{self.deadline.total_budget_seconds:g}s"
                if self.deadline.total_budget_seconds is not None
                else f"{self.deadline.slo_fraction:g}×SLO"
            )
            parts.append(f"deadlines({budget})")
        return ", ".join(parts)


# -- deadline propagation ----------------------------------------------------------


def split_deadline(
    total_budget_seconds: float,
    runtimes: Mapping[str, float],
    predecessors: Mapping[str, Sequence[str]],
    topo_order: Sequence[str],
    cold_latency: Optional[Mapping[str, float]] = None,
    stage_slack: float = 1.0,
) -> Dict[str, float]:
    """Split an end-to-end budget into per-stage budgets along the critical path.

    Each function's share is its runtime scaled by
    ``total_budget / critical_path_length`` (so the budgets of any path
    through the DAG sum to at most the total, and the critical path sums to
    exactly it), plus its cold-start latency — a cold start must never eat
    a stage's whole budget — times ``stage_slack``.  Functions absent from
    ``runtimes`` (skipped stages) get no budget.
    """
    if total_budget_seconds <= 0:
        raise ValueError("total_budget_seconds must be positive")
    cold = cold_latency or {}
    longest: Dict[str, float] = {}
    for name in topo_order:
        if name not in runtimes:
            continue
        upstream = max(
            (longest[p] for p in predecessors.get(name, ()) if p in longest),
            default=0.0,
        )
        longest[name] = upstream + max(0.0, float(runtimes[name]))
    critical = max(longest.values(), default=0.0)
    scale = total_budget_seconds / critical if critical > 0 else 1.0
    return {
        name: (cold.get(name, 0.0) + max(0.0, float(runtimes[name])) * scale)
        * stage_slack
        for name in longest
    }


# -- breaker state machine ---------------------------------------------------------


class _Breaker:
    """One function's circuit breaker.

    Same-time attempt records are buffered and applied as one batch when
    time advances (or the breaker is queried at a later instant), so the
    verdict never depends on the order in which simultaneous completions
    happened to be recorded — the property the permutation-determinism
    tests pin down.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = (
        "config",
        "state",
        "window",
        "opened_at",
        "probes_issued",
        "probe_successes",
        "opens",
        "_batch_time",
        "_batch",
        "transitions",
    )

    def __init__(self, config: CircuitBreakerConfig) -> None:
        self.config = config
        self.state = self.CLOSED
        self.window: Deque[Tuple[float, bool]] = deque()
        self.opened_at = 0.0
        self.probes_issued = 0
        self.probe_successes = 0
        self.opens = 0
        self._batch_time: Optional[float] = None
        self._batch: List[bool] = []
        #: (time, new_state) transition log, drained by the guard's events.
        self.transitions: List[Tuple[float, str]] = []

    # -- recording ---------------------------------------------------------------
    def record(self, now: float, killed: bool) -> None:
        """Feed one finished attempt (killed or completed) at time ``now``."""
        if self._batch_time is not None and now != self._batch_time:
            self._flush()
        self._batch_time = now
        self._batch.append(killed)

    def _flush(self) -> None:
        if self._batch_time is None:
            return
        now, batch = self._batch_time, self._batch
        self._batch_time, self._batch = None, []
        if self.state == self.OPEN:
            # Attempts that were already in flight when the breaker opened;
            # they carry no new information about the protected path.
            return
        if self.state == self.HALF_OPEN:
            if any(batch):
                self._open(now)
            else:
                self.probe_successes += len(batch)
                if self.probe_successes >= self.config.half_open_probes:
                    self.state = self.CLOSED
                    self.window.clear()
                    self.transitions.append((now, self.CLOSED))
            return
        for killed in batch:
            self.window.append((now, killed))
        self._evict(now)
        total = len(self.window)
        if total >= self.config.min_attempts:
            failures = sum(1 for _, k in self.window if k)
            if failures / total >= self.config.failure_threshold:
                self._open(now)

    def _open(self, now: float) -> None:
        self.state = self.OPEN
        self.opened_at = now
        self.opens += 1
        self.window.clear()
        self.transitions.append((now, self.OPEN))

    def _evict(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self.window and self.window[0][0] < horizon:
            self.window.popleft()

    # -- gating ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether an arrival at ``now`` may pass this breaker."""
        if self._batch_time is not None and self._batch_time <= now:
            self._flush()
        if self.state == self.OPEN:
            if now < self.opened_at + self.config.open_seconds:
                return False
            self.state = self.HALF_OPEN
            self.probes_issued = 0
            self.probe_successes = 0
            self.transitions.append((now, self.HALF_OPEN))
        if self.state == self.HALF_OPEN:
            if self.probes_issued >= self.config.half_open_probes:
                return False
            self.probes_issued += 1
        return True


# -- the guard ---------------------------------------------------------------------


class ProtectionGuard:
    """Runtime state of one protected serving run.

    Owned by a single :meth:`ServingSimulator.run` call; the simulator asks
    it to vet arrivals (:meth:`admit`), cap attempts against stage budgets
    (:meth:`cap_stage`), decide hedges (:meth:`hedge_delay`), and feeds it
    every finished attempt and completed request.  All state is derived
    from event times — the guard draws no randomness of its own.
    """

    def __init__(
        self,
        policy: ProtectionPolicy,
        function_names: Sequence[str],
        slo_limit_seconds: Optional[float] = None,
        cold_latency: Optional[Mapping[str, float]] = None,
        topo_order: Optional[Sequence[str]] = None,
        predecessors: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self.policy = policy
        self.slo_limit_seconds = slo_limit_seconds
        self._cold_latency = dict(cold_latency or {})
        self._topo_order = list(topo_order or function_names)
        self._predecessors = {
            name: list(preds) for name, preds in (predecessors or {}).items()
        }
        self._breakers: Dict[str, _Breaker] = (
            {name: _Breaker(policy.breaker) for name in function_names}
            if policy.breaker is not None
            else {}
        )
        shed = policy.shedding
        self._priorities: Dict[str, int] = (
            dict(shed.priorities) if shed is not None and shed.priorities else {}
        )
        self._max_shed_level = (
            max(self._priorities.values(), default=0) + 1 if shed is not None else 0
        )
        self.shed_level = 0
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None
        self._hedge_history: Dict[str, Deque[float]] = {}
        self._service_sum = 0.0
        self._service_count = 0
        self._dispatch_times: List[float] = []
        self.deadline_kills = 0
        self.events: List[Tuple[float, str, str]] = []

    # -- counters ----------------------------------------------------------------
    @property
    def breaker_opens(self) -> int:
        """Total closed/half-open → open transitions across all functions."""
        return sum(b.opens for b in self._breakers.values())

    @property
    def max_hedges_per_request(self) -> int:
        return (
            self.policy.hedging.max_hedges_per_request
            if self.policy.hedging is not None
            else 0
        )

    def drain_events(self) -> List[Tuple[float, str, str]]:
        """Flush and return the (time, kind, detail) protection event log."""
        for name in sorted(self._breakers):
            for when, new_state in self._breakers[name].transitions:
                self.events.append((when, f"breaker-{new_state}", name))
            self._breakers[name].transitions = []
        self.events.sort(key=lambda e: e[0])
        events, self.events = self.events, []
        return events

    # -- observation feeds -------------------------------------------------------
    def observe_dispatch(self, now: float) -> None:
        """Note one request leaving the queue (admission estimator floor)."""
        self._dispatch_times.append(now)

    def observe_completion(self, service_seconds: float) -> None:
        """Feed one completed request's service time (admission estimator)."""
        self._service_sum += service_seconds
        self._service_count += 1
        if self._dispatch_times:
            self._dispatch_times.pop(0)

    def _estimated_service(self, now: float) -> float:
        """Mean observed service time, floored by the oldest in-flight age.

        The floor matters under severe overload: when every request takes
        longer than the arrival horizon, no completion ever lands while
        arrivals are still being vetted, and a completions-only mean would
        stay at zero — admitting everything into a hopeless queue.
        """
        mean = self._service_sum / self._service_count if self._service_count else 0.0
        oldest = now - self._dispatch_times[0] if self._dispatch_times else 0.0
        return max(mean, oldest)

    def observe_attempt(
        self, function_name: str, now: float, killed: bool, elapsed: Optional[float]
    ) -> None:
        """Feed one finished invocation attempt (breakers + hedge history)."""
        breaker = self._breakers.get(function_name)
        if breaker is not None:
            breaker.record(now, killed)
        if not killed and elapsed is not None and self.policy.hedging is not None:
            history = self._hedge_history.get(function_name)
            if history is None:
                history = deque(maxlen=self.policy.hedging.history)
                self._hedge_history[function_name] = history
            history.append(elapsed)

    # -- admission ---------------------------------------------------------------
    def admit(
        self, now: float, input_class: str, queue_len: int, active: int
    ) -> Optional[str]:
        """Vet one arrival; returns the rejection cause, or ``None`` to admit."""
        self._observe_queue(now, queue_len)
        for name in self._topo_order:
            breaker = self._breakers.get(name)
            if breaker is not None and not breaker.allow(now):
                return "breaker"
        if self.shed_level > 0 and (
            self._priorities.get(input_class, 0) < self.shed_level
        ):
            return "shed"
        admission = self.policy.admission
        if admission is not None:
            if (
                admission.max_inflight_requests is not None
                and active + queue_len >= admission.max_inflight_requests
            ):
                return "admission"
            mean_service = self._estimated_service(now)
            if mean_service > 0:
                est_wait = queue_len * mean_service / max(1, active)
                if (
                    admission.max_estimated_wait_seconds is not None
                    and est_wait > admission.max_estimated_wait_seconds
                ):
                    return "admission"
                deadline = self._deadline_seconds()
                if (
                    admission.deadline_headroom is not None
                    and deadline is not None
                    and est_wait + mean_service > admission.deadline_headroom * deadline
                ):
                    return "deadline"
        return None

    def _deadline_seconds(self) -> Optional[float]:
        if (
            self.policy.deadline is not None
            and self.policy.deadline.total_budget_seconds is not None
        ):
            return self.policy.deadline.total_budget_seconds
        return self.slo_limit_seconds

    def _observe_queue(self, now: float, queue_len: int) -> None:
        shed = self.policy.shedding
        if shed is None:
            return
        if queue_len >= shed.queue_high:
            self._below_since = None
            if self.shed_level >= self._max_shed_level:
                return
            if self._above_since is None:
                self._above_since = now
            elif now - self._above_since >= shed.sustain_seconds:
                self.shed_level += 1
                self._above_since = now
                self.events.append((now, "shed-raise", f"level {self.shed_level}"))
        elif queue_len <= shed.queue_low:
            self._above_since = None
            if self.shed_level == 0:
                return
            if self._below_since is None:
                self._below_since = now
            elif now - self._below_since >= shed.restore_seconds:
                self.shed_level -= 1
                self._below_since = now
                self.events.append((now, "shed-restore", f"level {self.shed_level}"))
        else:
            self._above_since = None
            self._below_since = None

    # -- deadlines ---------------------------------------------------------------
    def stage_budgets(
        self, runtimes: Mapping[str, float]
    ) -> Optional[Dict[str, float]]:
        """Per-stage budgets for one trace, or ``None`` when deadlines are off."""
        deadline = self.policy.deadline
        if deadline is None:
            return None
        total = deadline.total_budget_seconds
        if total is None:
            if self.slo_limit_seconds is None:
                return None
            total = deadline.slo_fraction * self.slo_limit_seconds
        return split_deadline(
            total,
            runtimes,
            self._predecessors,
            self._topo_order,
            cold_latency=self._cold_latency,
            stage_slack=deadline.stage_slack,
        )

    def cap_stage(
        self,
        function_name: str,
        outcome: InvocationOutcome,
        budgets: Optional[Mapping[str, float]],
    ) -> InvocationOutcome:
        """Kill an attempt at its stage budget, like a fault-plan timeout."""
        if budgets is None:
            return outcome
        budget = budgets.get(function_name)
        if budget is None or outcome.elapsed_seconds <= budget:
            return outcome
        self.deadline_kills += 1
        return InvocationOutcome(
            fault=FaultKind.TIMEOUT, elapsed_seconds=budget, completed=False
        )

    # -- hedging -----------------------------------------------------------------
    def hedge_delay(
        self, function_name: str, planned_elapsed_seconds: float
    ) -> Optional[float]:
        """Seconds after attempt start to launch a hedge, or ``None``.

        A hedge fires only when the attempt's *planned* duration exceeds
        the function's rolling straggler percentile — the simulator knows
        every attempt's fate at start time, so "has been running longer
        than p-th percentile" collapses to this deterministic test.
        """
        hedging = self.policy.hedging
        if hedging is None:
            return None
        history = self._hedge_history.get(function_name)
        if history is None or len(history) < hedging.min_observations:
            return None
        threshold = _nearest_rank(list(history), hedging.straggler_percentile)
        if planned_elapsed_seconds > threshold:
            return threshold
        return None


# -- named profiles ----------------------------------------------------------------


def _profiles(seed: int) -> Dict[str, ProtectionPolicy]:
    return {
        "none": ProtectionPolicy.none(seed=seed),
        "admission": ProtectionPolicy(
            admission=AdmissionControlConfig(
                max_estimated_wait_seconds=60.0, deadline_headroom=1.0
            ),
            seed=seed,
        ),
        "breakers": ProtectionPolicy(
            breaker=CircuitBreakerConfig(
                window_seconds=30.0,
                failure_threshold=0.5,
                min_attempts=5,
                open_seconds=30.0,
                half_open_probes=2,
            ),
            seed=seed,
        ),
        "shedding": ProtectionPolicy(
            shedding=LoadSheddingConfig(queue_high=8, queue_low=2),
            seed=seed,
        ),
        "hedging": ProtectionPolicy(
            hedging=HedgingConfig(straggler_percentile=75.0, min_observations=10),
            seed=seed,
        ),
        "deadlines": ProtectionPolicy(
            deadline=DeadlineConfig(slo_fraction=1.0, stage_slack=2.0),
            seed=seed,
        ),
        "full": ProtectionPolicy(
            # Tight enough that admitted requests still have SLO headroom
            # left after queueing (the chatbot acceptance scenarios sit at
            # ~78s uncontended service against a 120s SLO).
            admission=AdmissionControlConfig(max_estimated_wait_seconds=45.0),
            breaker=CircuitBreakerConfig(
                window_seconds=30.0,
                failure_threshold=0.65,
                min_attempts=8,
                open_seconds=20.0,
                half_open_probes=2,
            ),
            shedding=LoadSheddingConfig(
                queue_high=12, queue_low=3, sustain_seconds=10.0
            ),
            hedging=HedgingConfig(straggler_percentile=75.0, min_observations=10),
            seed=seed,
        ),
    }


#: Profile names accepted by :func:`get_protection_profile` (and
#: ``serve --protection``).
PROTECTION_PROFILE_NAMES: Tuple[str, ...] = tuple(sorted(_profiles(0)))


def get_protection_profile(name: str, seed: int = 2025) -> ProtectionPolicy:
    """Look up a named protection profile, rooted at ``seed``."""
    key = name.strip().lower()
    profiles = _profiles(int(seed))
    if key not in profiles:
        known = ", ".join(sorted(profiles))
        raise KeyError(f"unknown protection profile {name!r}; expected one of {known}")
    return profiles[key]

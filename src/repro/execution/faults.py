"""Seed-deterministic fault injection for the serving layer.

Real serverless platforms are defined as much by their failure behaviour as
by their happy path: containers crash mid-invocation, transient OOM and
timeout kills destroy work, whole nodes fail and take every resident
container with them, and stragglers stretch the tail.  This module models
those perturbations as data — a :class:`FaultPlan` — plus a
:class:`FaultInjector` that turns the plan into a *schedule*:

* Per-invocation faults (crash-at-fraction-of-runtime, transient OOM,
  straggler slowdown, per-function timeout kills) are drawn from
  :class:`~repro.utils.rng.RngStream` children keyed by
  ``(request index, incarnation, function, attempt)``, so the schedule is a
  pure function of the plan's seed — independent of event interleaving,
  dispatch order, or how many other requests are in flight.
* Whole-node failures are a Poisson process over the run horizon,
  precomputed up front the same way.
* Retries are governed by pluggable :class:`RetryPolicy` objects
  (:class:`NoRetry`, :class:`FixedRetry`, :class:`ExponentialBackoffRetry`
  with deterministic jitter), all bounded by ``max_attempts``.

An *empty* plan (:meth:`FaultPlan.is_empty`) injects nothing; the serving
layer routes such runs through its unperturbed code path, so a run with an
empty plan is byte-identical to a run with no injector at all — the
invariant the golden-trace regression harness relies on.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.utils.rng import RngStream

__all__ = [
    "FaultKind",
    "HEDGE_ATTEMPT_OFFSET",
    "InvocationOutcome",
    "RetryPolicy",
    "NoRetry",
    "FixedRetry",
    "ExponentialBackoffRetry",
    "FaultPlan",
    "FaultInjector",
    "poisson_node_event_schedule",
    "FAULT_PROFILE_NAMES",
    "get_fault_profile",
]


class FaultKind(enum.Enum):
    """The kinds of perturbation the injector can apply to an invocation."""

    CRASH = "crash"
    OOM = "oom"
    TIMEOUT = "timeout"
    STRAGGLER = "straggler"
    NODE_FAILURE = "node-failure"


#: Attempt-number offset identifying hedged backup attempts.  A hedge racing
#: primary attempt ``k`` asks the injector for attempt ``k + offset``, so its
#: fate comes from a fresh keyed stream — deterministic, and never colliding
#: with a real retry of the same function (retry chains stay far below 1000).
HEDGE_ATTEMPT_OFFSET = 1000


# -- retry policies ---------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Decides whether (and when) a killed invocation is retried.

    Attempts are numbered from 1; ``max_attempts`` bounds the *total* number
    of attempts, so a policy with ``max_attempts=3`` retries at most twice.
    """

    max_attempts: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def backoff_seconds(
        self, attempt: int, rng: Optional[RngStream] = None
    ) -> Optional[float]:
        """Delay before the retry that follows failed attempt ``attempt``.

        Returns ``None`` when the budget is exhausted (no further attempt).
        """
        if attempt >= self.max_attempts:
            return None
        return self._delay(attempt, rng)

    def _delay(self, attempt: int, rng: Optional[RngStream]) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"{type(self).__name__}(max_attempts={self.max_attempts})"


@dataclass(frozen=True)
class NoRetry(RetryPolicy):
    """Fail terminally on the first kill (``max_attempts`` is forced to 1)."""

    max_attempts: int = 1

    def _delay(self, attempt: int, rng: Optional[RngStream]) -> float:
        raise AssertionError("NoRetry never grants a retry")  # pragma: no cover

    def describe(self) -> str:
        return "none"


@dataclass(frozen=True)
class FixedRetry(RetryPolicy):
    """Retry after a constant delay, up to ``max_attempts`` total attempts."""

    max_attempts: int = 3
    delay_seconds: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    def _delay(self, attempt: int, rng: Optional[RngStream]) -> float:
        return self.delay_seconds

    def describe(self) -> str:
        return f"fixed({self.delay_seconds:g}s, max {self.max_attempts})"


@dataclass(frozen=True)
class ExponentialBackoffRetry(RetryPolicy):
    """Exponential backoff with deterministic jitter.

    The delay before the retry following attempt ``k`` is
    ``min(base · multiplier^(k-1), max_delay) · (1 + jitter · u)`` with
    ``u`` drawn uniformly from ``[-1, 1)`` on the supplied
    :class:`~repro.utils.rng.RngStream` (``u = 0`` when none is given), so
    jittered schedules stay bit-reproducible under a fixed seed.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.5
    multiplier: float = 2.0
    max_delay_seconds: float = 30.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be at least 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def _delay(self, attempt: int, rng: Optional[RngStream]) -> float:
        delay = min(
            self.base_delay_seconds * self.multiplier ** (attempt - 1),
            self.max_delay_seconds,
        )
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return delay

    def describe(self) -> str:
        return (
            f"exponential({self.base_delay_seconds:g}s×{self.multiplier:g}, "
            f"max {self.max_attempts})"
        )


# -- the plan ---------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults one serving run suffers.

    All probabilities are per *invocation attempt*; at most one invocation
    fault is drawn per attempt (crash, then OOM, then straggler, by
    cumulative probability).  Timeouts apply on top: an attempt — slowed or
    not — that would hold its container longer than the function's timeout
    budget is killed at the budget instead.

    Attributes
    ----------
    crash_probability:
        Chance an attempt crashes partway through; the crash point is drawn
        uniformly from ``crash_fraction_range`` of the (possibly slowed)
        runtime, and all work up to it is lost.
    oom_probability:
        Chance of a transient OOM kill (same partial-work semantics; the
        container is destroyed either way, but reports count it separately).
    straggler_probability / straggler_slowdown:
        Chance an attempt runs ``slowdown`` times longer than modelled.
    timeout_seconds / timeout_overrides:
        Per-function wall-clock budget (cold start included); ``None``
        disables timeouts, and overrides take precedence per function name.
    node_failures_per_hour / node_recovery_seconds:
        Rate of whole-node failures across the cluster (a Poisson process
        over the run horizon; each event picks a node uniformly) and how
        long a failed node stays down.
    retry:
        Policy governing retries of killed attempts.
    seed:
        Root seed of the fault schedule; two runs of the same plan produce
        the same schedule.
    """

    crash_probability: float = 0.0
    crash_fraction_range: Tuple[float, float] = (0.1, 0.9)
    oom_probability: float = 0.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 4.0
    timeout_seconds: Optional[float] = None
    timeout_overrides: Optional[Mapping[str, float]] = None
    node_failures_per_hour: float = 0.0
    node_recovery_seconds: float = 120.0
    retry: RetryPolicy = field(default_factory=NoRetry)
    seed: int = 2025

    def __post_init__(self) -> None:
        for name in ("crash_probability", "oom_probability", "straggler_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.crash_probability + self.oom_probability + self.straggler_probability > 1.0:
            raise ValueError("fault probabilities cannot sum above 1")
        low, high = self.crash_fraction_range
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("crash_fraction_range must satisfy 0 <= low <= high <= 1")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be at least 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.timeout_overrides is not None:
            for name, value in self.timeout_overrides.items():
                if value <= 0:
                    raise ValueError(f"timeout override for {name!r} must be positive")
        if self.node_failures_per_hour < 0:
            raise ValueError("node_failures_per_hour must be non-negative")
        if self.node_recovery_seconds <= 0:
            raise ValueError("node_recovery_seconds must be positive")

    @classmethod
    def none(cls, seed: int = 2025) -> "FaultPlan":
        """The empty plan: injects nothing, perturbs nothing."""
        return cls(seed=seed)

    @property
    def is_empty(self) -> bool:
        """Whether this plan can never perturb a run."""
        return (
            self.crash_probability == 0.0
            and self.oom_probability == 0.0
            and self.straggler_probability == 0.0
            and self.timeout_seconds is None
            and not self.timeout_overrides
            and self.node_failures_per_hour == 0.0
        )

    def timeout_for(self, function_name: str) -> Optional[float]:
        """Effective timeout budget of one function (``None`` = unbounded)."""
        if self.timeout_overrides and function_name in self.timeout_overrides:
            return float(self.timeout_overrides[function_name])
        return self.timeout_seconds

    def with_seed(self, seed: int) -> "FaultPlan":
        """Copy of this plan rooted at a different schedule seed."""
        return dataclasses.replace(self, seed=int(seed))

    def describe(self) -> str:
        """Human-readable one-liner of the active fault sources."""
        if self.is_empty:
            return "no faults"
        parts: List[str] = []
        if self.crash_probability:
            parts.append(f"crash {self.crash_probability * 100:g}%")
        if self.oom_probability:
            parts.append(f"oom {self.oom_probability * 100:g}%")
        if self.straggler_probability:
            parts.append(
                f"straggler {self.straggler_probability * 100:g}% "
                f"×{self.straggler_slowdown:g}"
            )
        if self.timeout_seconds is not None or self.timeout_overrides:
            budget = (
                f"{self.timeout_seconds:g}s" if self.timeout_seconds is not None else "per-fn"
            )
            parts.append(f"timeout {budget}")
        if self.node_failures_per_hour:
            parts.append(
                f"node failures {self.node_failures_per_hour:g}/h "
                f"(recover {self.node_recovery_seconds:g}s)"
            )
        parts.append(f"retry {self.retry.describe()}")
        return ", ".join(parts)


# -- invocation outcomes ----------------------------------------------------------


@dataclass(frozen=True)
class InvocationOutcome:
    """What the injector decided for one invocation attempt.

    ``elapsed_seconds`` is how long the attempt holds its container from
    acquisition (cold start included) to completion or kill; a killed
    attempt's elapsed time is pure wasted work.
    """

    fault: Optional[FaultKind]
    elapsed_seconds: float
    completed: bool

    @property
    def killed(self) -> bool:
        """Whether the attempt was killed before completing."""
        return not self.completed

    @property
    def breaker_signal(self) -> bool:
        """What a circuit breaker should count this attempt as.

        Kills of every kind (crash, OOM, timeout — including stage-budget
        deadline kills) are failures; completions, slowed or not, are
        successes.  Kept here so the protection layer and any future
        consumer agree on the classification.
        """
        return not self.completed


# -- the injector -----------------------------------------------------------------


class FaultInjector:
    """Turns a :class:`FaultPlan` into a deterministic fault schedule.

    Every decision is drawn from an :class:`~repro.utils.rng.RngStream`
    child keyed by the invocation's identity, never from a shared sequential
    stream — so the schedule depends only on the plan's seed, not on the
    order in which the serving layer asks.
    """

    def __init__(self, plan: FaultPlan, rng: Optional[RngStream] = None) -> None:
        self.plan = plan
        self._rng = rng if rng is not None else RngStream(plan.seed, "faults")

    # -- per-invocation schedule ---------------------------------------------------
    def plan_invocation(
        self,
        request_index: int,
        function_name: str,
        attempt: int,
        runtime_seconds: float,
        cold_start_seconds: float = 0.0,
        incarnation: int = 0,
    ) -> InvocationOutcome:
        """Decide the fate of one invocation attempt.

        Parameters
        ----------
        request_index / function_name / attempt / incarnation:
            Identity of the attempt (``incarnation`` counts node-failure
            restarts of the whole request, so a re-placed request draws a
            fresh schedule instead of replaying its old one).
        runtime_seconds:
            The attempt's fault-free service runtime.
        cold_start_seconds:
            Cold-start latency the attempt pays before useful work starts.
        """
        stream = self._rng.child(
            "invocation", request_index, incarnation, function_name, attempt
        )
        draw = stream.uniform()
        fault: Optional[FaultKind] = None
        effective = float(runtime_seconds)
        kill_at: Optional[float] = None
        crash_p = self.plan.crash_probability
        oom_p = self.plan.oom_probability
        straggler_p = self.plan.straggler_probability
        low, high = self.plan.crash_fraction_range
        if draw < crash_p:
            fault = FaultKind.CRASH
            kill_at = cold_start_seconds + stream.uniform(low, high) * effective
        elif draw < crash_p + oom_p:
            fault = FaultKind.OOM
            kill_at = cold_start_seconds + stream.uniform(low, high) * effective
        elif draw < crash_p + oom_p + straggler_p:
            fault = FaultKind.STRAGGLER
            effective *= self.plan.straggler_slowdown
        completion = cold_start_seconds + effective
        end = completion if kill_at is None else kill_at
        timeout = self.plan.timeout_for(function_name)
        if timeout is not None and timeout < end:
            # The timeout budget kills first, whatever else was scheduled.
            return InvocationOutcome(
                fault=FaultKind.TIMEOUT, elapsed_seconds=timeout, completed=False
            )
        if kill_at is not None:
            return InvocationOutcome(fault=fault, elapsed_seconds=kill_at, completed=False)
        return InvocationOutcome(fault=fault, elapsed_seconds=completion, completed=True)

    def backoff_seconds(
        self,
        request_index: int,
        function_name: str,
        attempt: int,
        incarnation: int = 0,
    ) -> Optional[float]:
        """Retry delay after failed attempt ``attempt`` (None = give up)."""
        stream = self._rng.child(
            "backoff", request_index, incarnation, function_name, attempt
        )
        return self.plan.retry.backoff_seconds(attempt, stream)

    # -- node-failure schedule -----------------------------------------------------
    def node_failure_schedule(
        self, duration_seconds: float, node_names: Sequence[str]
    ) -> List[Tuple[float, str]]:
        """Precompute ``(time, node)`` failure events over the run horizon.

        Failures arrive as a Poisson process at ``node_failures_per_hour``
        across the whole cluster; each event strikes a uniformly chosen
        node.  The schedule is sorted by time and fully determined by the
        plan's seed.
        """
        if (
            self.plan.node_failures_per_hour <= 0
            or duration_seconds <= 0
            or not node_names
        ):
            return []
        stream = self._rng.child("node-failures")
        return poisson_node_event_schedule(
            stream, duration_seconds, self.plan.node_failures_per_hour, node_names
        )


def poisson_node_event_schedule(
    stream: RngStream,
    duration_seconds: float,
    events_per_hour: float,
    node_names: Sequence[str],
) -> List[Tuple[float, str]]:
    """Draw a time-sorted ``(time, node)`` Poisson event schedule.

    Events arrive at ``events_per_hour`` across the whole node set; each one
    strikes a uniformly chosen node.  Fully determined by ``stream``.  Shared
    by node-failure plans and spot-eviction schedules so both compose on the
    same downtime machinery.
    """
    if events_per_hour <= 0 or duration_seconds <= 0 or not node_names:
        return []
    mean_gap = 3600.0 / events_per_hour
    events: List[Tuple[float, str]] = []
    t = stream.exponential(mean_gap)
    while t < duration_seconds:
        events.append((t, str(stream.choice(list(node_names)))))
        t += stream.exponential(mean_gap)
    return events


# -- named profiles ---------------------------------------------------------------


def _profiles(seed: int) -> Dict[str, FaultPlan]:
    return {
        "none": FaultPlan.none(seed=seed),
        "crashes": FaultPlan(
            crash_probability=0.15,
            retry=ExponentialBackoffRetry(max_attempts=4, base_delay_seconds=0.5),
            seed=seed,
        ),
        "oom": FaultPlan(
            oom_probability=0.12,
            retry=FixedRetry(max_attempts=3, delay_seconds=1.0),
            seed=seed,
        ),
        "stragglers": FaultPlan(
            straggler_probability=0.2,
            straggler_slowdown=5.0,
            retry=NoRetry(),
            seed=seed,
        ),
        "node-storm": FaultPlan(
            node_failures_per_hour=90.0,
            node_recovery_seconds=45.0,
            retry=ExponentialBackoffRetry(max_attempts=3, base_delay_seconds=0.5),
            seed=seed,
        ),
        "chaos": FaultPlan(
            crash_probability=0.1,
            oom_probability=0.05,
            straggler_probability=0.1,
            straggler_slowdown=3.0,
            node_failures_per_hour=30.0,
            node_recovery_seconds=60.0,
            retry=ExponentialBackoffRetry(max_attempts=4, base_delay_seconds=0.5),
            seed=seed,
        ),
    }


#: Profile names accepted by :func:`get_fault_profile` (and ``serve --faults``).
FAULT_PROFILE_NAMES: Tuple[str, ...] = tuple(sorted(_profiles(0))) + ("default",)


def get_fault_profile(name: str, seed: int = 2025) -> FaultPlan:
    """Look up a named fault profile, rooted at ``seed``.

    ``"default"`` is resolved by the caller (it means "the workload's own
    profile") and is rejected here.
    """
    key = name.strip().lower()
    profiles = _profiles(int(seed))
    if key not in profiles:
        known = ", ".join(sorted(profiles) + ["default"])
        raise KeyError(f"unknown fault profile {name!r}; expected one of {known}")
    return profiles[key]

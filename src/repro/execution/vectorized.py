"""Vectorized execution substrate: whole batches in one array pass.

The scalar :class:`~repro.execution.executor.WorkflowExecutor` walks the DAG
once per configuration; a 4 096-point grid sweep therefore re-sorts the DAG,
re-resolves predecessors and re-estimates every function 4 096 times.  The
:class:`VectorizedBackend` here replays the exact same simulation semantics —
dependency-ordered start times, OOM kills, downstream skips, failed-invocation
billing and decoupled pricing — but over *all* submitted configurations at
once: per-function runtimes come from the
:mod:`repro.perfmodel.vectorized` batch kernels, and start/finish times, costs
and failure propagation are computed with array reductions over the DAG's
topological order.

The vectorized path is bit-identical to the scalar executor (same IEEE
operations in the same order), so searches observe exactly the same traces
regardless of which substrate serves them.  Entries that cannot be vectorized
stay on the scalar executor:

* evaluations carrying an :class:`~repro.utils.rng.RngStream` (noise draws are
  inherently per-invocation),
* substrates with ``simulate_cold_starts`` (the warm pool is stateful),
* ``fail_fast_on_oom`` (the scalar path's mid-batch exception semantics),
* workflows whose functions use non-analytic performance models.

Mixed batches split transparently: vectorizable rows go through the array
engine, the rest through the executor, and traces come back in submission
order either way.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.execution.backend import BackendStats, EvaluationBackend
from repro.execution.executor import WorkflowExecutor
from repro.execution.trace import ExecutionStatus, ExecutionTrace, FunctionExecution
from repro.perfmodel.vectorized import (
    VectorizedFunctionKernel,
    batch_estimates,
    vectorize_function_model,
)
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration

__all__ = [
    "BatchOutcome",
    "LazyExecutionTrace",
    "VectorizedWorkflowEngine",
    "VectorizedBackend",
]

#: Integer status codes used in :class:`BatchOutcome` arrays.
_SUCCESS, _OOM, _SKIPPED = 0, 1, 2

_STATUS_BY_CODE = {
    _SUCCESS: ExecutionStatus.SUCCESS,
    _OOM: ExecutionStatus.OOM,
    _SKIPPED: ExecutionStatus.SKIPPED,
}


@dataclass(frozen=True)
class _WorkflowPlan:
    """Pre-resolved DAG structure shared by every batch of one workflow."""

    workflow: Workflow
    #: Function names in the executor's deterministic topological order.
    names: Tuple[str, ...]
    #: Batch kernel of each function, aligned with ``names``.
    kernels: Tuple[VectorizedFunctionKernel, ...]
    #: Predecessor positions (indices into ``names``) of each function.
    predecessors: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class BatchOutcome:
    """Array view of one evaluated batch (N configurations × F functions)."""

    #: ``(N, F)`` per-function start / finish timestamps and billed runtimes.
    start: np.ndarray
    finish: np.ndarray
    runtime: np.ndarray
    #: ``(N, F)`` per-invocation costs.
    cost: np.ndarray
    #: ``(N, F)`` status codes (0 success, 1 OOM, 2 skipped).
    status: np.ndarray
    #: ``(N,)`` end-to-end latency, total cost and all-functions-succeeded mask.
    latency: np.ndarray
    total_cost: np.ndarray
    succeeded: np.ndarray


class LazyExecutionTrace(ExecutionTrace):
    """An :class:`ExecutionTrace` whose records materialize on first access.

    A 4 096-configuration sweep would otherwise allocate tens of thousands of
    :class:`FunctionExecution` dataclasses that the hot consumers (grid
    search, heat maps, random designs) never read — they only look at the
    end-to-end latency, total cost and success flag, which the batch engine
    has already computed as array reductions.  Those aggregates are served
    from pre-computed scalars here; the full per-function record dict is
    built lazily (and cached) the first time ``records`` is touched, yielding
    values bit-identical to an eagerly built trace.

    Each trace owns plain-float copies of its own row (O(F) values) rather
    than a reference into the batch arrays, so a long-lived trace — e.g. one
    retained by a shared :class:`~repro.execution.backend.CachingBackend` —
    never pins its whole batch's ``(N, F)`` arrays in memory.
    """

    def __init__(
        self,
        workflow_name: str,
        input_scale: float,
        names: Sequence[str],
        configuration: WorkflowConfiguration,
        start_row: Sequence[float],
        finish_row: Sequence[float],
        runtime_row: Sequence[float],
        cost_row: Sequence[float],
        status_row: Sequence[int],
        latency: float,
        total_cost: float,
        succeeded: bool,
    ) -> None:
        # Deliberately does not call the dataclass __init__: ``records`` is a
        # property on this subclass and is populated on demand.
        self.workflow_name = workflow_name
        self.input_scale = input_scale
        self._names = names
        self._configuration = configuration
        self._start_row = start_row
        self._finish_row = finish_row
        self._runtime_row = runtime_row
        self._cost_row = cost_row
        self._status_row = status_row
        self._records: Optional[Dict[str, FunctionExecution]] = None
        self._latency = latency
        self._total_cost = total_cost
        self._succeeded = succeeded

    @property
    def records(self) -> Dict[str, FunctionExecution]:  # type: ignore[override]
        if self._records is None:
            self._records = {
                name: FunctionExecution(
                    function_name=name,
                    config=self._configuration[name],
                    start_time=self._start_row[j],
                    finish_time=self._finish_row[j],
                    runtime_seconds=self._runtime_row[j],
                    cost=self._cost_row[j],
                    status=_STATUS_BY_CODE[self._status_row[j]],
                    input_scale=self.input_scale,
                )
                for j, name in enumerate(self._names)
            }
        return self._records

    # Aggregates the batch engine already reduced; identical to iterating the
    # materialized records.
    @property
    def end_to_end_latency(self) -> float:
        return self._latency

    @property
    def total_cost(self) -> float:
        return self._total_cost

    @property
    def succeeded(self) -> bool:
        return self._succeeded


class VectorizedWorkflowEngine:
    """Batch evaluator sharing one executor's models, pricing and options."""

    def __init__(self, executor: WorkflowExecutor) -> None:
        self.executor = executor
        # Plans are cached per workflow name; the workflow object is kept so a
        # *different* workflow reusing a name rebuilds instead of matching.
        self._plans: Dict[str, Tuple[Workflow, Optional[_WorkflowPlan]]] = {}
        self._lock = threading.Lock()

    # -- planning ---------------------------------------------------------------
    def plan_for(self, workflow: Workflow) -> Optional[_WorkflowPlan]:
        """Resolve (and cache) the batch plan; ``None`` if not vectorizable."""
        with self._lock:
            cached = self._plans.get(workflow.name)
            if cached is not None and cached[0] is workflow:
                return cached[1]
        plan = self._build_plan(workflow)
        with self._lock:
            self._plans[workflow.name] = (workflow, plan)
        return plan

    def _build_plan(self, workflow: Workflow) -> Optional[_WorkflowPlan]:
        names = tuple(workflow.topological_order())
        position = {name: index for index, name in enumerate(names)}
        kernels: List[VectorizedFunctionKernel] = []
        for name in names:
            spec = workflow.function(name)
            try:
                model = self.executor.performance_model.function_model(spec.profile_name)
            except KeyError:
                return None
            kernel = vectorize_function_model(model)
            if kernel is None:
                return None
            kernels.append(kernel)
        predecessors = tuple(
            tuple(position[p] for p in workflow.predecessors(name)) for name in names
        )
        return _WorkflowPlan(
            workflow=workflow,
            names=names,
            kernels=tuple(kernels),
            predecessors=predecessors,
        )

    # -- batch evaluation -------------------------------------------------------
    def evaluate_allocations(
        self,
        plan: _WorkflowPlan,
        allocations: np.ndarray,
        input_scale: float = 1.0,
    ) -> BatchOutcome:
        """Evaluate an ``(N, F, 2)`` allocation array against one workflow.

        Reproduces the scalar executor semantics column by column in
        topological order: OOM detection per function, skip propagation to
        dependents, billing of killed invocations at their minimum viable
        memory, and dependency-ordered start times.
        """
        allocations = np.asarray(allocations, dtype=float)
        estimates = batch_estimates(plan.kernels, allocations, input_scale=input_scale)
        n_configs, n_functions = allocations.shape[0], allocations.shape[1]
        pricing = self.executor.pricing
        charge_failed = self.executor.options.charge_failed_invocations

        start = np.zeros((n_configs, n_functions))
        finish = np.zeros((n_configs, n_functions))
        runtime = np.zeros((n_configs, n_functions))
        cost = np.zeros((n_configs, n_functions))
        status = np.zeros((n_configs, n_functions), dtype=np.int8)
        failed = np.zeros((n_configs, n_functions), dtype=bool)
        total_cost = np.zeros(n_configs)

        for j in range(n_functions):
            estimate = estimates[j]
            vcpu = allocations[:, j, 0]
            memory = allocations[:, j, 1]
            # Same operation order as PricingModel.invocation_cost.
            rate = (
                pricing.price_per_vcpu_second * vcpu
                + pricing.price_per_mb_second * memory
            )

            preds = plan.predecessors[j]
            if preds:
                start_j = finish[:, preds[0]].copy()
                for p in preds[1:]:
                    np.maximum(start_j, finish[:, p], out=start_j)
                skipped = failed[:, preds[0]].copy()
                for p in preds[1:]:
                    skipped |= failed[:, p]
            else:
                start_j = np.zeros(n_configs)
                skipped = np.zeros(n_configs, dtype=bool)

            oom = ~skipped & estimate.oom
            ok = ~skipped & ~estimate.oom

            runtime_j = np.where(ok, estimate.total_seconds, 0.0)
            cost_j = np.where(ok, estimate.total_seconds * rate + pricing.price_per_request, 0.0)
            if charge_failed and oom.any():
                runtime_j = np.where(oom, estimate.charged_seconds, runtime_j)
                cost_j = np.where(
                    oom,
                    estimate.charged_seconds * rate + pricing.price_per_request,
                    cost_j,
                )

            start[:, j] = start_j
            runtime[:, j] = runtime_j
            finish[:, j] = start_j + runtime_j
            cost[:, j] = cost_j
            status[:, j] = np.where(skipped, _SKIPPED, np.where(oom, _OOM, _SUCCESS))
            failed[:, j] = skipped | oom
            # Left-to-right accumulation in topological order matches the
            # scalar ``sum`` over the trace's insertion-ordered records.
            total_cost += cost_j

        latency = finish.max(axis=1)
        succeeded = ~failed.any(axis=1)
        return BatchOutcome(
            start=start,
            finish=finish,
            runtime=runtime,
            cost=cost,
            status=status,
            latency=latency,
            total_cost=total_cost,
            succeeded=succeeded,
        )

    # -- configuration plumbing -------------------------------------------------
    @staticmethod
    def allocation_array(
        plan: _WorkflowPlan, configurations: Sequence[WorkflowConfiguration]
    ) -> np.ndarray:
        """Stack configurations into the ``(N, F, 2)`` kernel input layout."""
        allocations = np.empty((len(configurations), len(plan.names), 2))
        try:
            # Column-wise fill with flat attribute comprehensions: this runs
            # N·F times per batch, and avoiding per-pair tuple allocation
            # measurably speeds up large sweeps.
            for j, name in enumerate(plan.names):
                column = [configuration[name] for configuration in configurations]
                allocations[:, j, 0] = [config.vcpu for config in column]
                allocations[:, j, 1] = [config.memory_mb for config in column]
        except KeyError:
            # Report exactly as the scalar executor does.
            for configuration in configurations:
                missing = [
                    name for name in plan.workflow.function_names
                    if name not in configuration
                ]
                if missing:
                    raise KeyError(f"configuration is missing functions: {missing}")
            raise
        return allocations

    def traces(
        self,
        plan: _WorkflowPlan,
        configurations: Sequence[WorkflowConfiguration],
        outcome: BatchOutcome,
        input_scale: float = 1.0,
    ) -> List[ExecutionTrace]:
        """Wrap the outcome rows as (lazily materializing) execution traces."""
        workflow_name = plan.workflow.name
        # One whole-array tolist per field (C-speed) hands each trace its own
        # plain-float row, decoupling trace lifetime from the batch arrays.
        start = outcome.start.tolist()
        finish = outcome.finish.tolist()
        runtime = outcome.runtime.tolist()
        cost = outcome.cost.tolist()
        status = outcome.status.tolist()
        latency = outcome.latency.tolist()
        total_cost = outcome.total_cost.tolist()
        succeeded = outcome.succeeded.tolist()
        return [
            LazyExecutionTrace(
                workflow_name=workflow_name,
                input_scale=input_scale,
                names=plan.names,
                configuration=configuration,
                start_row=start[i],
                finish_row=finish[i],
                runtime_row=runtime[i],
                cost_row=cost[i],
                status_row=status[i],
                latency=latency[i],
                total_cost=total_cost[i],
                succeeded=succeeded[i],
            )
            for i, configuration in enumerate(configurations)
        ]


class VectorizedBackend(EvaluationBackend):
    """Evaluation substrate serving whole batches from the array engine.

    Single ``evaluate`` calls delegate to the scalar executor (one
    configuration gains nothing from array form); ``evaluate_batch`` routes
    every rng-free entry through :class:`VectorizedWorkflowEngine` in one
    pass.  Composes with :class:`~repro.execution.backend.CachingBackend`
    exactly like the simulator substrate, and is selectable through
    ``build_backend(..., name="vectorized")`` / ``--backend vectorized``.
    """

    name = "vectorized"

    def __init__(self, executor: WorkflowExecutor) -> None:
        self.executor = executor
        self.engine = VectorizedWorkflowEngine(executor)
        self._lock = threading.Lock()
        self._stats = BackendStats()

    # -- scalar fallbacks -------------------------------------------------------
    def _must_use_scalar(self) -> bool:
        options = self.executor.options
        return options.simulate_cold_starts or options.fail_fast_on_oom

    def evaluate(
        self,
        workflow: Workflow,
        configuration: WorkflowConfiguration,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> ExecutionTrace:
        trace = self.executor.execute(
            workflow, configuration, input_scale=input_scale, rng=rng
        )
        with self._lock:
            self._stats.evaluations += 1
            self._stats.simulations += 1
        return trace

    def evaluate_batch(
        self,
        workflow: Workflow,
        configurations: Sequence[WorkflowConfiguration],
        input_scale: float = 1.0,
        rngs: Optional[Sequence[Optional[RngStream]]] = None,
    ) -> List[ExecutionTrace]:
        configurations = list(configurations)
        rngs = self._check_rngs(configurations, rngs)
        plan = None if self._must_use_scalar() else self.engine.plan_for(workflow)

        vector_indices = (
            [i for i, rng in enumerate(rngs) if rng is None] if plan is not None else []
        )
        traces: List[Optional[ExecutionTrace]] = [None] * len(configurations)

        if vector_indices:
            batch = [configurations[i] for i in vector_indices]
            allocations = self.engine.allocation_array(plan, batch)
            outcome = self.engine.evaluate_allocations(
                plan, allocations, input_scale=input_scale
            )
            for index, trace in zip(
                vector_indices,
                self.engine.traces(plan, batch, outcome, input_scale=input_scale),
            ):
                traces[index] = trace

        scalar_count = 0
        for index, (configuration, rng) in enumerate(zip(configurations, rngs)):
            if traces[index] is None:
                traces[index] = self.executor.execute(
                    workflow, configuration, input_scale=input_scale, rng=rng
                )
                scalar_count += 1

        with self._lock:
            self._stats.evaluations += len(configurations)
            self._stats.simulations += scalar_count
            self._stats.vectorized += len(vector_indices)
            self._stats.batches += 1
        return traces  # type: ignore[return-value]

    # -- inspection -------------------------------------------------------------
    @property
    def stats(self) -> BackendStats:
        pool = self.executor.container_pool
        with self._lock:
            stats = BackendStats(**vars(self._stats))
        stats.cold_starts = pool.cold_starts
        stats.warm_hits = pool.warm_hits
        stats.evictions = pool.evictions
        stats.fault_kills = pool.fault_kills
        return stats

    @property
    def deterministic(self) -> bool:
        # Mirrors SimulatorBackend: a warm-container pool (scalar fallback
        # path) makes traces history-dependent.
        return not self.executor.options.simulate_cold_starts

    def describe(self) -> str:
        return "vectorized"

"""Heterogeneous instance-type catalog for fleet clusters.

Real tuning systems search over cloud instance families rather than one
homogeneous node shape (SNIPPETS.md Snippet 3 sweeps
``m5/m5a/m6g/c5/c5a/c6g`` × cpu × memory).  This module adopts that space as
a node catalog: each :class:`InstanceType` names a family shape with a vCPU
count, memory size and a per-family pricing multiplier (AMD ``*a`` and
Graviton ``*g`` variants undercut the Intel baseline, compute-optimised
``c*`` families trade memory for cheaper vCPUs).  ``spot=True`` nodes take a
further discount but are subject to seed-deterministic eviction schedules
that ride the same Poisson downtime machinery as PR 4 node failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.execution.cluster import Cluster, Node
from repro.execution.faults import poisson_node_event_schedule
from repro.utils.rng import RngStream, derive_seed

__all__ = [
    "InstanceType",
    "INSTANCE_FAMILIES",
    "SPOT_DISCOUNT",
    "instance_catalog",
    "get_instance_type",
    "make_node",
    "build_cluster",
    "spot_eviction_schedule",
]

# Per-family (memory MiB per vCPU, price multiplier per vCPU-hour relative to
# m5).  The m* families are general-purpose 4 GiB/vCPU shapes; the c* families
# are compute-optimised 2 GiB/vCPU shapes at a lower per-vCPU price.
INSTANCE_FAMILIES: Dict[str, Tuple[float, float]] = {
    "m5": (4096.0, 1.00),
    "m5a": (4096.0, 0.90),
    "m6g": (4096.0, 0.80),
    "c5": (2048.0, 0.89),
    "c5a": (2048.0, 0.80),
    "c6g": (2048.0, 0.72),
}

# vCPU counts for the .large → .4xlarge size ladder.
_SIZE_LADDER: Dict[str, int] = {"large": 2, "xlarge": 4, "2xlarge": 8, "4xlarge": 16}

# Extra discount applied to the price multiplier of spot (preemptible) nodes.
SPOT_DISCOUNT = 0.35


@dataclass(frozen=True)
class InstanceType:
    """One catalog shape a fleet node can be provisioned from."""

    name: str
    family: str
    vcpu: int
    memory_mb: float
    price_multiplier: float

    def describe(self) -> str:
        return (
            f"{self.name}: {self.vcpu} vCPU, {self.memory_mb / 1024.0:.0f} GiB, "
            f"{self.price_multiplier:.2f}x"
        )


def instance_catalog() -> Dict[str, InstanceType]:
    """The full family × size catalog, keyed by instance name."""
    catalog: Dict[str, InstanceType] = {}
    for family, (mb_per_vcpu, price) in INSTANCE_FAMILIES.items():
        for size, vcpu in _SIZE_LADDER.items():
            name = f"{family}.{size}"
            catalog[name] = InstanceType(
                name=name,
                family=family,
                vcpu=vcpu,
                memory_mb=vcpu * mb_per_vcpu,
                price_multiplier=price,
            )
    return catalog


_CATALOG = instance_catalog()


def get_instance_type(name: str) -> InstanceType:
    """Look up one catalog entry by name (e.g. ``"c5.2xlarge"``)."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; available: {', '.join(sorted(_CATALOG))}"
        ) from None


def make_node(instance: Union[str, InstanceType], name: str, spot: bool = False) -> Node:
    """Provision one node from a catalog shape."""
    if isinstance(instance, str):
        instance = get_instance_type(instance)
    multiplier = instance.price_multiplier * (SPOT_DISCOUNT if spot else 1.0)
    return Node(
        name=name,
        vcpu_capacity=float(instance.vcpu),
        memory_capacity_mb=float(instance.memory_mb),
        instance_type=instance.name,
        price_multiplier=multiplier,
        spot=spot,
    )


def build_cluster(spec: Sequence[Tuple[str, int]], spot_spec: Sequence[Tuple[str, int]] = ()) -> Cluster:
    """Build a heterogeneous cluster from ``(instance_type, count)`` pairs.

    On-demand nodes are named ``<type>-<i>``; spot nodes ``<type>-spot-<i>``.
    Node order (and therefore placement tie-breaking) follows the spec order.
    """
    nodes: List[Node] = []
    for instance_name, count in spec:
        for i in range(count):
            nodes.append(make_node(instance_name, f"{instance_name}-{i}"))
    for instance_name, count in spot_spec:
        for i in range(count):
            nodes.append(make_node(instance_name, f"{instance_name}-spot-{i}", spot=True))
    return Cluster(nodes)


def spot_eviction_schedule(
    cluster: Cluster,
    duration_seconds: float,
    evictions_per_hour: float,
    seed: int,
) -> List[Tuple[float, str]]:
    """Seed-deterministic ``(time, node)`` eviction events over spot nodes.

    Uses the same Poisson downtime machinery as node-failure plans so spot
    evictions and PR 4 node failures compose on one recovery path; only
    ``spot=True`` nodes are eligible.
    """
    spot_nodes = [node.name for node in cluster.nodes if node.spot]
    stream = RngStream(derive_seed(seed, "spot-evictions"))
    return poisson_node_event_schedule(
        stream, duration_seconds, evictions_per_hour, spot_nodes
    )

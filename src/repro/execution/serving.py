"""Event-driven serving layer: contended request streams over finite capacity.

The paper's input-aware engine (§IV-D, Fig. 8) is evaluated on request
*streams*, and the ROADMAP's north star is heavy traffic — so this module
models how serverless platforms are actually exercised: concurrent requests
contending for finite cluster capacity and a time-aware warm-container pool.

The :class:`ServingSimulator` drives a request stream through a discrete
:class:`~repro.execution.events.EventLoop`:

* Each arrival asks the cluster for capacity (one container per function of
  its configuration).  If the cluster cannot host the request it joins a FIFO
  queue; the wait is recorded as *queueing delay*.
* Dispatched requests obtain their pure service trace from the PR-1
  :class:`~repro.execution.backend.EvaluationBackend` layer at trigger time 0
  — deterministic traces are memoized; noisy runs bypass the cache — and the
  serving layer replays that trace at the dispatch time, overlaying per
  function cold starts from a shared, time-aware
  :class:`~repro.execution.container.ContainerPool`.
* On completion the capacity is released and queued requests are admitted in
  order.
* An optional autoscaler observes the arrival rate and resizes the warm pool
  (Little's-law target), trading cold starts against idle containers.

Everything is deterministic under a fixed seed: arrivals are generated from
:class:`~repro.utils.rng.RngStream` children, events at equal timestamps run
in insertion order, and per-request noise streams are derived from the
request index.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.execution.backend import EvaluationBackend, SimulatorBackend
from repro.execution.cluster import Cluster, Node
from repro.execution.container import ContainerPool
from repro.execution.events import EventLoop, RequestArrival
from repro.execution.executor import WorkflowExecutor
from repro.execution.faults import (
    HEDGE_ATTEMPT_OFFSET,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InvocationOutcome,
)
from repro.execution.protection import ProtectionGuard, ProtectionPolicy
from repro.execution.trace import ExecutionStatus, ExecutionTrace
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = [
    "AutoscalerOptions",
    "ServingOptions",
    "ServedRequest",
    "ServingMetrics",
    "ServingResult",
    "ServingSimulator",
    "percentile",
]


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank lookup into an already-sorted sequence."""
    if not 0 <= q <= 100:
        raise ValueError("q must be between 0 and 100")
    if len(ordered) == 0:
        return float("nan")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` is in percent (p99 → ``q=99``).  Returns ``nan`` on empty input.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be between 0 and 100")
    if not values:
        return float("nan")
    return _nearest_rank(sorted(values), q)


@dataclass(frozen=True)
class AutoscalerOptions:
    """Reactive warm-pool sizing policy.

    Every ``interval_seconds`` the autoscaler estimates the arrival rate over
    the trailing ``window_seconds`` and retargets the per-function warm-pool
    cap at ``ceil(rate × mean_service_time × headroom)`` (Little's law),
    clamped to ``[min_containers, max_containers]``.  Until the first request
    completes there is no service-time observation and the cap is left alone.
    """

    interval_seconds: float = 30.0
    window_seconds: float = 60.0
    headroom: float = 1.25
    min_containers: int = 1
    max_containers: int = 256

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0 or self.window_seconds <= 0:
            raise ValueError("autoscaler intervals must be positive")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")
        if not 1 <= self.min_containers <= self.max_containers:
            raise ValueError("need 1 <= min_containers <= max_containers")


@dataclass(frozen=True)
class ServingOptions:
    """Tunable behaviour of the serving simulator.

    Attributes
    ----------
    simulate_cold_starts:
        Overlay per-function cold starts from the shared warm pool.
    queue_capacity:
        Maximum *waiting* requests; an arrival that cannot dispatch once the
        queue is full is rejected (``0`` models a serve-or-reject loss
        system).  ``None`` queues without bound.
    autoscale:
        Enable the reactive warm-pool autoscaler.
    autoscaler:
        Policy knobs used when ``autoscale`` is on.
    """

    simulate_cold_starts: bool = True
    queue_capacity: Optional[int] = None
    autoscale: bool = False
    autoscaler: AutoscalerOptions = field(default_factory=AutoscalerOptions)


class ServedRequest:
    """Outcome of one request that made it through the serving layer.

    The resilience fields (``attempts`` onwards) are only populated by
    fault-injecting runs; fault-free runs leave them at their zero defaults.
    ``base_invocations`` counts the invocations a fault-free execution of
    the same trace performs, so ``attempts / base_invocations`` is the
    request's retry amplification.

    A million-request run allocates one of these per request, so the class
    is a hand-written ``__slots__`` record rather than a dataclass (which
    cannot combine slots with field defaults before Python 3.10); the
    memory win is measured in ``benchmarks/results/BENCH_serving.json``.
    ``config_version`` stays writable — the serving loop stamps it at
    completion time under an adaptive controller.
    """

    __slots__ = (
        "index",
        "request",
        "configuration",
        "dispatch_time",
        "completion_time",
        "cost",
        "cold_start_count",
        "cold_start_seconds",
        "succeeded",
        "service_trace",
        "config_version",
        "attempts",
        "retries",
        "restarts",
        "base_invocations",
        "wasted_seconds",
        "wasted_gb_seconds",
        "fault_counts",
        "hedges",
        "hedge_wins",
    )

    def __init__(
        self,
        index: int,
        request: RequestArrival,
        configuration: WorkflowConfiguration,
        dispatch_time: float,
        completion_time: float,
        cost: float,
        cold_start_count: int = 0,
        cold_start_seconds: float = 0.0,
        succeeded: bool = True,
        service_trace: Optional[ExecutionTrace] = None,
        config_version: int = 0,
        attempts: int = 0,
        retries: int = 0,
        restarts: int = 0,
        base_invocations: int = 0,
        wasted_seconds: float = 0.0,
        wasted_gb_seconds: float = 0.0,
        fault_counts: Optional[Dict[str, int]] = None,
        hedges: int = 0,
        hedge_wins: int = 0,
    ) -> None:
        self.index = index
        self.request = request
        self.configuration = configuration
        self.dispatch_time = dispatch_time
        self.completion_time = completion_time
        self.cost = cost
        self.cold_start_count = cold_start_count
        self.cold_start_seconds = cold_start_seconds
        self.succeeded = succeeded
        self.service_trace = service_trace
        #: Configuration version that served this request (0 = the initial
        #: configuration; bumped by adaptive re-tunes).  Static runs stay at 0.
        self.config_version = config_version
        self.attempts = attempts
        self.retries = retries
        self.restarts = restarts
        self.base_invocations = base_invocations
        self.wasted_seconds = wasted_seconds
        self.wasted_gb_seconds = wasted_gb_seconds
        self.fault_counts = fault_counts if fault_counts is not None else {}
        self.hedges = hedges
        self.hedge_wins = hedge_wins

    def __repr__(self) -> str:
        return (
            f"ServedRequest(index={self.index}, "
            f"arrival={self.request.arrival_time!r}, "
            f"dispatch={self.dispatch_time!r}, "
            f"completion={self.completion_time!r}, cost={self.cost!r}, "
            f"succeeded={self.succeeded})"
        )

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    @property
    def arrival_time(self) -> float:
        """When the request entered the system."""
        return self.request.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for cluster capacity."""
        return self.dispatch_time - self.request.arrival_time

    @property
    def service_seconds(self) -> float:
        """Time from dispatch to completion (cold starts included)."""
        return self.completion_time - self.dispatch_time

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency the client observes (queueing included)."""
        return self.completion_time - self.request.arrival_time


@dataclass
class ServingMetrics:
    """Tail-latency / SLO / cost summary of one serving run."""

    duration_seconds: float
    offered: int
    completed: int
    rejected: int
    failed: int
    makespan_seconds: float
    offered_rate_rps: float
    throughput_rps: float
    latency_mean_seconds: float
    latency_p50_seconds: float
    latency_p95_seconds: float
    latency_p99_seconds: float
    latency_max_seconds: float
    queueing_mean_seconds: float
    queueing_p95_seconds: float
    queueing_max_seconds: float
    slo_limit_seconds: Optional[float]
    slo_attainment: Optional[float]
    cold_start_request_rate: float
    cold_start_invocations: int
    mean_cost_per_request: float
    total_cost: float
    cpu_utilization: Optional[float]
    memory_utilization: Optional[float]
    peak_concurrency: int
    mean_concurrency: float
    # -- resilience metrics (fault-injection runs; zero/identity otherwise) ----
    goodput_rps: float = 0.0
    availability: float = 1.0
    retry_amplification: float = 1.0
    wasted_seconds: float = 0.0
    wasted_gb_seconds: float = 0.0
    faults_injected: int = 0
    node_failures: int = 0
    # -- graceful-degradation metrics (protected runs; empty/zero otherwise) ----
    rejected_by_cause: Dict[str, int] = field(default_factory=dict)
    hedges_launched: int = 0
    hedge_wins: int = 0
    breaker_opens: int = 0
    deadline_kills: int = 0


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    outcomes: List[ServedRequest]
    rejected: List[RequestArrival]
    metrics: ServingMetrics
    autoscaler_decisions: List[Tuple[float, int]] = field(default_factory=list)
    #: Why a batched engine delegated this run to the scalar one ("" = it
    #: did not).  Stamped by the batched engine, never by the scalar path.
    fallback_reason: str = ""
    #: Timestamped (time, kind, detail) protection decisions (breaker
    #: transitions, shed level changes); empty for unprotected runs.
    protection_events: List[Tuple[float, str, str]] = field(default_factory=list)

    def latencies(self) -> List[float]:
        """Per-request end-to-end latencies in arrival order."""
        return [o.latency_seconds for o in self.outcomes]

    def mean_latency_by_class(self) -> Dict[str, float]:
        """Average client-observed latency per input class."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            name = outcome.request.input_class
            sums[name] = sums.get(name, 0.0) + outcome.latency_seconds
            counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def mean_cost_by_class(self) -> Dict[str, float]:
        """Average request cost per input class."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            name = outcome.request.input_class
            sums[name] = sums.get(name, 0.0) + outcome.cost
            counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}


class _ClusterLedger:
    """Per-request capacity reservations on a cluster, with utilization.

    A request reserves one container per workflow function for its full
    residence time; placement follows the affinity-aware heuristic (minimise
    the node's CPU/memory utilisation imbalance after hosting the container).
    Placements are keyed ``function#request`` so concurrent requests running
    the same workflow release exactly their own capacity.  The ledger also
    integrates reserved vCPU/memory over time for utilization reporting.
    """

    def __init__(self, cluster: Optional[Cluster]) -> None:
        self.cluster = cluster
        self.active = 0
        self.peak_active = 0
        self._last_time = 0.0
        self._cpu_area = 0.0
        self._mem_area = 0.0
        self._concurrency_area = 0.0
        self._cap_cpu_area = 0.0
        self._cap_mem_area = 0.0
        self._saw_unhealthy_window = False
        self._placements: Dict[int, List[Tuple[Node, str]]] = {}

    # -- time integration -------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate utilization up to ``now`` (call before any change)."""
        dt = now - self._last_time
        if dt <= 0:
            return
        if self.cluster is not None:
            self._cpu_area += sum(n.vcpu_used for n in self.cluster.nodes) * dt
            self._mem_area += sum(n.memory_used_mb for n in self.cluster.nodes) * dt
            # Capacity that could actually have hosted work over this window:
            # failed nodes contribute nothing, so node-storm runs no longer
            # deflate reported utilization by dividing by ghost capacity.
            cap_cpu = 0.0
            cap_mem = 0.0
            all_healthy = True
            for n in self.cluster.nodes:
                if n.healthy:
                    cap_cpu += n.vcpu_capacity
                    cap_mem += n.memory_capacity_mb
                else:
                    all_healthy = False
            self._cap_cpu_area += cap_cpu * dt
            self._cap_mem_area += cap_mem * dt
            if not all_healthy:
                self._saw_unhealthy_window = True
        self._concurrency_area += self.active * dt
        self._last_time = now

    # -- reservations -----------------------------------------------------------
    def try_reserve(
        self, request_id: int, configuration: WorkflowConfiguration, now: float
    ) -> bool:
        """Reserve capacity for one request; rolls back fully on failure."""
        self.advance(now)
        if self.cluster is None:
            self.active += 1
            self.peak_active = max(self.peak_active, self.active)
            return True
        placed: List[Tuple[Node, str]] = []
        for function_name, config in configuration.items():
            best: Optional[Node] = None
            best_key: Optional[Tuple[float, float, str]] = None
            for node in self.cluster.nodes:
                if not node.can_fit(config):
                    continue
                projected_cpu = (node.vcpu_used + config.vcpu) / node.vcpu_capacity
                projected_mem = (
                    node.memory_used_mb + config.memory_mb
                ) / node.memory_capacity_mb
                key = (
                    round(abs(projected_cpu - projected_mem), 9),
                    round(projected_cpu + projected_mem, 9),
                    node.name,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = node
            if best is None:
                for node, name in placed:
                    node.remove(name)
                return False
            name = f"{function_name}#{request_id}"
            best.place(name, config)
            placed.append((best, name))
        self._placements[request_id] = placed
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        return True

    def release(self, request_id: int, now: float) -> None:
        """Give a finished request's capacity back."""
        self.advance(now)
        self.active -= 1
        placed = self._placements.pop(request_id, None)
        if placed is not None:
            for node, name in placed:
                node.remove(name)

    # -- node failures ----------------------------------------------------------
    def fail_node(self, node_name: str, now: float) -> List[int]:
        """Take one node down and abort every request placed on it.

        Every affected request loses *all* its reservations (including those
        on healthy nodes — the request restarts from scratch), so the caller
        must re-queue the returned request ids.  Failing an already-down
        node is a no-op.
        """
        self.advance(now)
        if self.cluster is None:
            return []
        node = self.cluster.node(node_name)
        if not node.healthy:
            return []
        affected = sorted(
            request_id
            for request_id, placed in self._placements.items()
            if any(n is node for n, _ in placed)
        )
        for request_id in affected:
            for placed_node, name in self._placements.pop(request_id):
                if placed_node is not node:
                    placed_node.remove(name)
            self.active -= 1
        self.cluster.fail_node(node_name)
        return affected

    def restore_node(self, node_name: str, now: float) -> None:
        """Bring a failed node back into the placement candidate set."""
        self.advance(now)
        if self.cluster is not None:
            self.cluster.restore_node(node_name)

    @property
    def has_down_nodes(self) -> bool:
        """Whether any node is currently failed (capacity may come back)."""
        return self.cluster is not None and any(
            not node.healthy for node in self.cluster.nodes
        )

    # -- reporting --------------------------------------------------------------
    def utilization(self) -> Tuple[Optional[float], Optional[float], float]:
        """Time-averaged (cpu, memory, concurrency) over the observed span."""
        span = self._last_time
        if span <= 0:
            return (None, None, 0.0) if self.cluster is None else (0.0, 0.0, 0.0)
        mean_concurrency = self._concurrency_area / span
        if self.cluster is None:
            return None, None, mean_concurrency
        if self._saw_unhealthy_window and self._cap_cpu_area > 0 and self._cap_mem_area > 0:
            # Healthy-capacity time-area denominator: windows with failed
            # nodes count only the capacity that was actually up.
            cpu = self._cpu_area / self._cap_cpu_area
            mem = self._mem_area / self._cap_mem_area
            return cpu, mem, mean_concurrency
        # No node was ever down: keep the closed-form denominator so
        # fault-free runs stay byte-identical to the historical goldens
        # (summing per-window capacity areas is not float-associative
        # with multiplying total capacity by the span).
        cpu = self._cpu_area / (self.cluster.total_vcpu_capacity * span)
        mem = self._mem_area / (self.cluster.total_memory_capacity_mb * span)
        return cpu, mem, mean_concurrency


class _Autoscaler:
    """Reactive warm-pool sizing from the observed arrival rate."""

    def __init__(self, pool: ContainerPool, options: AutoscalerOptions) -> None:
        self.pool = pool
        self.options = options
        self.decisions: List[Tuple[float, int]] = []
        self._arrivals: Deque[float] = deque()
        self._services: Deque[Tuple[float, float]] = deque()

    def observe_arrival(self, now: float) -> None:
        self._arrivals.append(now)

    def observe_service(self, now: float, seconds: float) -> None:
        self._services.append((now, seconds))

    def tick(self, now: float) -> None:
        cutoff = now - self.options.window_seconds
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        # Service observations share the arrivals' sliding window, so the
        # Little's-law target tracks *recent* service times rather than the
        # lifetime mean (which lags badly after a drift phase).
        while self._services and self._services[0][0] < cutoff:
            self._services.popleft()
        if not self._services:
            return
        # Warm-up correction (mirrors SlidingWindowMonitor): before a full
        # window has elapsed, divide by the time actually observed instead of
        # the nominal window, or early ticks underestimate the arrival rate.
        effective_window = (
            min(self.options.window_seconds, now) if now > 0 else self.options.window_seconds
        )
        rate = len(self._arrivals) / effective_window
        mean_service = sum(seconds for _, seconds in self._services) / len(self._services)
        target = math.ceil(rate * mean_service * self.options.headroom)
        target = max(self.options.min_containers, min(self.options.max_containers, target))
        if target != self.pool.max_containers_per_function:
            self.pool.resize(target)
            self.decisions.append((now, target))


class _RequestCarry:
    """Counters one request accumulates across node-failure incarnations.

    A node failure aborts the in-flight request and re-queues it; the fresh
    launch must keep billing, retry and wasted-work totals from the aborted
    incarnation, so they live here rather than in per-launch state.
    ``__slots__``-backed like :class:`ServedRequest` — one per in-flight
    request on the faulty hot path.
    """

    __slots__ = (
        "attempts",
        "retries",
        "restarts",
        "wasted_seconds",
        "wasted_gb_seconds",
        "extra_cost",
        "cold_count",
        "cold_seconds",
        "fault_counts",
        "hedges",
        "hedge_wins",
    )

    def __init__(self) -> None:
        self.attempts = 0
        self.retries = 0
        self.restarts = 0
        self.wasted_seconds = 0.0
        self.wasted_gb_seconds = 0.0
        self.extra_cost = 0.0
        self.cold_count = 0
        self.cold_seconds = 0.0
        self.fault_counts: Dict[str, int] = {}
        self.hedges = 0
        self.hedge_wins = 0

    def count_fault(self, kind: FaultKind) -> None:
        self.fault_counts[kind.value] = self.fault_counts.get(kind.value, 0) + 1


class ServingSimulator:
    """Serve a request stream against finite cluster and warm-pool capacity.

    Parameters
    ----------
    workflow:
        The DAG each request executes.
    executor:
        Supplies the performance model, pricing, and (by default) the shared
        warm pool.  Must not simulate cold starts itself — the serving layer
        overlays them so service traces stay memoizable.
    backend:
        Evaluation substrate for service traces; defaults to a plain
        :class:`SimulatorBackend` over ``executor``.  Pass a
        :class:`~repro.execution.backend.CachingBackend` stack to memoize.
    cluster:
        Finite capacity the requests contend for; ``None`` serves every
        request immediately (no queueing).
    container_pool:
        Warm pool for the cold-start overlay; defaults to the executor's own
        pool so backend statistics report the serving pool's counters.
    slo:
        End-to-end latency objective used for SLO-attainment reporting.
    options:
        Queueing / cold-start / autoscaling knobs.
    faults:
        Optional :class:`~repro.execution.faults.FaultPlan` perturbing the
        run (crashes, OOM/timeout kills, stragglers, node failures,
        retries).  ``None`` — or an *empty* plan — leaves the unperturbed
        code path untouched, so such runs are byte-identical to pre-fault
        behaviour.
    protection:
        Optional :class:`~repro.execution.protection.ProtectionPolicy`
        defending the run (admission control, circuit breakers, load
        shedding, hedging, deadline budgets).  ``None`` — or an *empty*
        policy — leaves the unprotected code path untouched, mirroring the
        empty-fault-plan invariant.
    """

    def __init__(
        self,
        workflow: Workflow,
        executor: WorkflowExecutor,
        backend: Optional[EvaluationBackend] = None,
        cluster: Optional[Cluster] = None,
        container_pool: Optional[ContainerPool] = None,
        slo: Optional[SLO] = None,
        options: Optional[ServingOptions] = None,
        faults: Optional[FaultPlan] = None,
        protection: Optional[ProtectionPolicy] = None,
    ) -> None:
        if executor.options.simulate_cold_starts:
            raise ValueError(
                "the serving layer overlays cold starts itself; build the "
                "executor with simulate_cold_starts=False"
            )
        self.workflow = workflow
        self.executor = executor
        self.backend = backend if backend is not None else SimulatorBackend(executor)
        self.cluster = cluster
        self.container_pool = (
            container_pool if container_pool is not None else executor.container_pool
        )
        self.slo = slo
        self.options = options if options is not None else ServingOptions()
        self.faults = faults
        self.protection = protection
        # The workflow is fixed for the simulator's lifetime: resolve the
        # per-function cold-start latencies, topological order and adjacency
        # once instead of on the per-request hot path.
        self._cold_latency = {
            spec.name: executor.cold_start_latency(spec.profile_name)
            for spec in workflow.functions
        }
        self._topo_order: List[str] = list(workflow.topological_order())
        self._predecessors: Dict[str, List[str]] = {
            name: list(workflow.predecessors(name)) for name in self._topo_order
        }
        self._successors: Dict[str, List[str]] = {name: [] for name in self._topo_order}
        for name, preds in self._predecessors.items():
            for pred in preds:
                self._successors[pred].append(name)

    # -- service-time reconstruction ---------------------------------------------
    def _launch(
        self,
        loop: EventLoop,
        index: int,
        request: RequestArrival,
        configuration: WorkflowConfiguration,
        dispatch_time: float,
        rng: Optional[RngStream],
        on_complete: Callable[[ServedRequest], None],
    ) -> None:
        """Replay one request's service trace on the event loop.

        The trace comes from the backend at trigger 0 (memoizable); each
        function is then re-enacted as events at its absolute start/finish
        times, acquiring warm containers at the true start and releasing them
        at the true finish — so overlapping requests can never share a
        container, exactly as on a real platform.  ``on_complete`` fires as a
        loop event at the request's completion time.
        """
        trace = self.backend.evaluate(
            self.workflow,
            configuration,
            input_scale=request.input_scale,
            rng=rng,
        )
        pool = self.container_pool if self.options.simulate_cold_starts else None
        records = trace.records
        finish: Dict[str, float] = {}
        waiting = {
            name: sum(1 for p in self._predecessors[name] if p in records)
            for name in self._topo_order
            if name in records
        }
        state = {
            "remaining": len(waiting),
            "completion": dispatch_time,
            "cold_count": 0,
            "cold_seconds": 0.0,
            "extra_cost": 0.0,
        }

        def finish_function(name: str, end: float) -> None:
            finish[name] = end
            state["completion"] = max(state["completion"], end)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                outcome = ServedRequest(
                    index=index,
                    request=request,
                    configuration=configuration,
                    dispatch_time=dispatch_time,
                    completion_time=state["completion"],
                    cost=trace.total_cost + state["extra_cost"],
                    cold_start_count=state["cold_count"],
                    cold_start_seconds=state["cold_seconds"],
                    succeeded=trace.succeeded,
                    service_trace=trace,
                )
                loop.schedule(state["completion"], lambda: on_complete(outcome))
                return
            for successor in self._successors[name]:
                if successor not in waiting:
                    continue
                waiting[successor] -= 1
                if waiting[successor] == 0:
                    start = max(
                        finish[p] for p in self._predecessors[successor] if p in finish
                    )
                    loop.schedule(start, run_function(successor, start))

        def run_function(name: str, start: float) -> Callable[[], None]:
            def fire() -> None:
                record = records[name]
                if record.status is ExecutionStatus.SKIPPED:
                    finish_function(name, start)
                    return
                penalty = 0.0
                container = None
                if pool is not None:
                    container, cold = pool.acquire(name, record.config, start)
                    if cold:
                        penalty = self._cold_latency[name]
                        state["cold_count"] += 1
                        state["cold_seconds"] += penalty
                end = start + penalty + record.runtime_seconds
                if container is not None:
                    if record.status is ExecutionStatus.OOM:
                        # The OOM kill destroys the container: never released.
                        pass
                    else:
                        # Released as an event at the true finish time, so a
                        # concurrent request cannot warm-hit a busy container.
                        loop.schedule(
                            end,
                            lambda c=container, t=end: pool.release(c, t),
                        )
                if penalty > 0.0:
                    # The cold start is billed like runtime on the same container.
                    state["extra_cost"] += self.executor.pricing.invocation_cost(
                        record.runtime_seconds + penalty, record.config
                    ) - self.executor.pricing.invocation_cost(
                        record.runtime_seconds, record.config
                    )
                finish_function(name, end)

            return fire

        roots = [name for name, pending in waiting.items() if pending == 0]
        if not roots:
            # Degenerate empty trace: complete immediately with zero work.
            loop.schedule(
                dispatch_time,
                lambda: on_complete(
                    ServedRequest(
                        index=index,
                        request=request,
                        configuration=configuration,
                        dispatch_time=dispatch_time,
                        completion_time=dispatch_time,
                        cost=trace.total_cost,
                        succeeded=trace.succeeded,
                        service_trace=trace,
                    )
                ),
            )
            return
        for name in roots:
            loop.schedule(dispatch_time, run_function(name, dispatch_time))

    # -- fault-injecting service replay --------------------------------------------
    def _launch_faulty(
        self,
        loop: EventLoop,
        injector: FaultInjector,
        index: int,
        request: RequestArrival,
        configuration: WorkflowConfiguration,
        dispatch_time: float,
        rng: Optional[RngStream],
        on_complete: Callable[[ServedRequest], None],
        register_abort: Callable[[int, Callable[[float], None]], None],
        carry: _RequestCarry,
        guard: Optional[ProtectionGuard] = None,
    ) -> None:
        """Replay one request's service trace with fault injection.

        Mirrors :meth:`_launch`, with three additions: every invocation
        attempt asks the injector for its fate (clean completion, straggler
        slowdown, or a crash/OOM/timeout kill), killed attempts are retried
        under the plan's :class:`~repro.execution.faults.RetryPolicy` (a
        retry that exhausts its budget fails the function terminally and
        skips its dependents), and the whole launch can be *aborted* by a
        node failure — partial work is billed and counted as waste, and the
        caller re-queues the request with its accumulated ``carry``.

        A :class:`~repro.execution.protection.ProtectionGuard` adds two
        per-attempt mechanisms on top (everything below is a strict no-op
        when ``guard`` is ``None``, keeping faulty-but-unprotected runs
        byte-identical to their PR 4 behaviour):

        * **deadline budgets** — each attempt is capped at its stage's
          share of the end-to-end budget; exceeding it is a timeout kill,
          retried like any other.
        * **hedging** — an attempt planned to outlast the function's
          rolling straggler percentile gets a deterministic backup attempt
          launched at the percentile mark.  The race is resolved
          analytically at hedge-launch time (both fates are already
          known), but every consequence — loser cancellation, waste
          billing, breaker feeds, the retry of a doubly-killed stage — is
          still applied as events at its true simulated time.
        """
        trace = self.backend.evaluate(
            self.workflow,
            configuration,
            input_scale=request.input_scale,
            rng=rng,
        )
        pool = self.container_pool if self.options.simulate_cold_starts else None
        pricing = self.executor.pricing
        records = trace.records
        incarnation = carry.restarts
        budgets = (
            guard.stage_budgets(
                {
                    name: record.runtime_seconds
                    for name, record in records.items()
                    if record.status is not ExecutionStatus.SKIPPED
                }
            )
            if guard is not None
            else None
        )
        base_invocations = sum(
            1 for r in records.values() if r.status is not ExecutionStatus.SKIPPED
        )
        finish: Dict[str, float] = {}
        waiting = {
            name: sum(1 for p in self._predecessors[name] if p in records)
            for name in self._topo_order
            if name in records
        }
        state = {
            "dead": False,
            "remaining": len(waiting),
            "completion": dispatch_time,
        }
        # Attempts currently in flight (with or without a container) and the
        # work of attempts already completed — both needed to account an
        # abort, and billing happens at settle/abort time only, so the same
        # attempt can never be charged twice.
        running: Dict[str, Tuple[Optional[object], float, object]] = {}
        done_work: List[Tuple[float, float, object]] = []  # (elapsed, base_cost, config)
        failed: set = set()

        def complete_request() -> None:
            # A terminally failed request is billed only for the work that
            # actually ran (completed attempts' base costs live in
            # ``done_work``, killed attempts in ``carry.extra_cost``); the
            # functions its failure skipped never execute, so the trace's
            # full base cost would overcharge it.
            if failed:
                base_cost = sum(cost for _, cost, _ in done_work)
            else:
                base_cost = trace.total_cost
            outcome = ServedRequest(
                index=index,
                request=request,
                configuration=configuration,
                dispatch_time=dispatch_time,
                completion_time=state["completion"],
                cost=base_cost + carry.extra_cost,
                cold_start_count=carry.cold_count,
                cold_start_seconds=carry.cold_seconds,
                succeeded=trace.succeeded and not failed,
                service_trace=trace,
                attempts=carry.attempts,
                retries=carry.retries,
                restarts=carry.restarts,
                base_invocations=base_invocations,
                wasted_seconds=carry.wasted_seconds,
                wasted_gb_seconds=carry.wasted_gb_seconds,
                fault_counts=dict(carry.fault_counts),
                hedges=carry.hedges,
                hedge_wins=carry.hedge_wins,
            )
            loop.schedule(
                state["completion"],
                lambda: None if state["dead"] else on_complete(outcome),
            )

        def finish_function(name: str, end: float) -> None:
            finish[name] = end
            state["completion"] = max(state["completion"], end)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                complete_request()
                return
            for successor in self._successors[name]:
                if successor not in waiting:
                    continue
                waiting[successor] -= 1
                if waiting[successor] == 0:
                    start = max(
                        finish[p] for p in self._predecessors[successor] if p in finish
                    )
                    loop.schedule(start, start_function(successor, start, 1))

        def settle_completed(
            name: str, end: float, outcome: InvocationOutcome, record,
            release_container: bool = True,
            cancel: Optional[Dict[str, bool]] = None,
        ) -> Callable[[], None]:
            def fire() -> None:
                if state["dead"] or (cancel is not None and cancel["cancelled"]):
                    return
                entry = running.pop(name, None)
                if entry is not None and entry[0] is not None and pool is not None:
                    if release_container:
                        pool.release(entry[0], end)
                    # else: the attempt killed its own container (config OOM);
                    # it is never returned, exactly as in the fault-free path.
                if outcome.fault is FaultKind.STRAGGLER:
                    carry.count_fault(FaultKind.STRAGGLER)
                # Bill the cold start and any straggler stretch on top of the
                # trace's own (base-runtime) cost.
                carry.extra_cost += pricing.invocation_cost(
                    outcome.elapsed_seconds, record.config
                ) - pricing.invocation_cost(record.runtime_seconds, record.config)
                done_work.append((outcome.elapsed_seconds, record.cost, record.config))
                if guard is not None:
                    guard.observe_attempt(name, end, False, outcome.elapsed_seconds)
                finish_function(name, end)

            return fire

        def settle_killed(
            name: str, end: float, attempt: int, outcome: InvocationOutcome, record,
            cancel: Optional[Dict[str, bool]] = None,
        ) -> Callable[[], None]:
            def fire() -> None:
                if state["dead"] or (cancel is not None and cancel["cancelled"]):
                    return
                entry = running.pop(name, None)
                if entry is not None and entry[0] is not None and pool is not None:
                    pool.kill(entry[0])
                # The killed attempt is billed in full and is pure waste; the
                # trace's base cost is only charged by the attempt that
                # eventually completes.
                carry.count_fault(outcome.fault)
                carry.extra_cost += pricing.invocation_cost(
                    outcome.elapsed_seconds, record.config
                )
                carry.wasted_seconds += outcome.elapsed_seconds
                carry.wasted_gb_seconds += (
                    record.config.memory_mb / 1024.0 * outcome.elapsed_seconds
                )
                if guard is not None:
                    guard.observe_attempt(name, end, True, None)
                delay = injector.backoff_seconds(index, name, attempt, incarnation)
                if delay is None:
                    # Retry budget exhausted: terminal failure.  Dependents
                    # are skipped, sibling branches run to completion.
                    failed.add(name)
                    finish_function(name, end)
                    return
                carry.retries += 1
                retry_at = end + delay
                loop.schedule(retry_at, start_function(name, retry_at, attempt + 1))

            return fire

        def launch_hedge(
            name: str,
            attempt: int,
            h_start: float,
            p_start: float,
            p_outcome: InvocationOutcome,
            p_end: float,
            record,
            cancel: Dict[str, bool],
        ) -> Callable[[], None]:
            """Launch the backup attempt and resolve the race.

            Both fates are fully determined here (the injector is a pure
            function of the attempt's identity), so the winner is picked
            analytically — but every consequence is scheduled as an event
            at its true time, so containers, billing and breaker feeds all
            happen exactly when they would on a real platform.
            """

            def fire() -> None:
                if (
                    state["dead"]
                    or name not in running
                    or carry.hedges >= guard.max_hedges_per_request
                ):
                    return
                penalty = 0.0
                h_container = None
                if pool is not None:
                    h_container, cold = pool.acquire(name, record.config, h_start)
                    if cold:
                        penalty = self._cold_latency[name]
                        carry.cold_count += 1
                        carry.cold_seconds += penalty
                carry.attempts += 1
                carry.hedges += 1
                h_outcome = injector.plan_invocation(
                    index,
                    name,
                    HEDGE_ATTEMPT_OFFSET + attempt,
                    record.runtime_seconds,
                    cold_start_seconds=penalty,
                    incarnation=incarnation,
                )
                h_outcome = guard.cap_stage(name, h_outcome, budgets)
                h_end = h_start + h_outcome.elapsed_seconds
                hkey = name + "\x00hedge"
                running[hkey] = (h_container, h_start, record.config)

                def drop(at: float, natural_kill: bool) -> Callable[[], None]:
                    # The hedge leaves the race at ``at`` — killed by its own
                    # fault (natural_kill) or cancelled because the primary
                    # won.  Either way its work is waste.
                    def fire_drop() -> None:
                        if state["dead"]:
                            return
                        entry = running.pop(hkey, None)
                        if entry is None:
                            return
                        elapsed = at - h_start
                        if elapsed > 0:
                            carry.extra_cost += pricing.invocation_cost(
                                elapsed, record.config
                            )
                            carry.wasted_seconds += elapsed
                            carry.wasted_gb_seconds += (
                                record.config.memory_mb / 1024.0 * elapsed
                            )
                        if natural_kill:
                            carry.count_fault(h_outcome.fault)
                            guard.observe_attempt(name, at, True, None)
                        if pool is not None and entry[0] is not None:
                            pool.kill(entry[0])

                    return fire_drop

                def cancel_primary(at: float, natural_kill: bool) -> Callable[[], None]:
                    # Re-enact the primary's exit now that its settle event is
                    # suppressed: its own kill at ``p_end`` (natural_kill) or
                    # cancellation the moment the hedge completes.
                    def fire_cancel() -> None:
                        if state["dead"]:
                            return
                        entry = running.pop(name, None)
                        if entry is None:
                            return
                        elapsed = at - p_start
                        if elapsed > 0:
                            carry.extra_cost += pricing.invocation_cost(
                                elapsed, record.config
                            )
                            carry.wasted_seconds += elapsed
                            carry.wasted_gb_seconds += (
                                record.config.memory_mb / 1024.0 * elapsed
                            )
                        if natural_kill:
                            carry.count_fault(p_outcome.fault)
                            guard.observe_attempt(name, at, True, None)
                        if pool is not None and entry[0] is not None:
                            pool.kill(entry[0])

                    return fire_cancel

                def win_fire() -> None:
                    if state["dead"]:
                        return
                    entry = running.pop(hkey, None)
                    if entry is None:
                        return
                    if entry[0] is not None and pool is not None:
                        pool.release(entry[0], h_end)
                    if h_outcome.fault is FaultKind.STRAGGLER:
                        carry.count_fault(FaultKind.STRAGGLER)
                    carry.extra_cost += pricing.invocation_cost(
                        h_outcome.elapsed_seconds, record.config
                    ) - pricing.invocation_cost(record.runtime_seconds, record.config)
                    done_work.append(
                        (h_outcome.elapsed_seconds, record.cost, record.config)
                    )
                    carry.hedge_wins += 1
                    guard.observe_attempt(name, h_end, False, h_outcome.elapsed_seconds)
                    finish_function(name, h_end)

                def hedge_killed_retry() -> None:
                    # Both attempts died and the hedge died last: it owns the
                    # stage's retry decision (the primary's settle was
                    # suppressed so the stage cannot retry twice).
                    if state["dead"]:
                        return
                    entry = running.pop(hkey, None)
                    if entry is None:
                        return
                    if pool is not None and entry[0] is not None:
                        pool.kill(entry[0])
                    carry.count_fault(h_outcome.fault)
                    carry.extra_cost += pricing.invocation_cost(
                        h_outcome.elapsed_seconds, record.config
                    )
                    carry.wasted_seconds += h_outcome.elapsed_seconds
                    carry.wasted_gb_seconds += (
                        record.config.memory_mb / 1024.0 * h_outcome.elapsed_seconds
                    )
                    guard.observe_attempt(name, h_end, True, None)
                    delay = injector.backoff_seconds(index, name, attempt, incarnation)
                    if delay is None:
                        failed.add(name)
                        finish_function(name, h_end)
                        return
                    carry.retries += 1
                    retry_at = h_end + delay
                    loop.schedule(retry_at, start_function(name, retry_at, attempt + 1))

                p_ok = p_outcome.completed
                h_ok = h_outcome.completed
                if p_ok and (not h_ok or p_end <= h_end):
                    # Primary wins (ties favour it); the hedge dies on its own
                    # fault if that comes first, else is cancelled at p_end.
                    if not h_ok and h_end <= p_end:
                        loop.schedule(h_end, drop(h_end, True))
                    else:
                        loop.schedule(p_end, drop(p_end, False))
                elif h_ok and (not p_ok or h_end < p_end):
                    # Hedge wins: suppress the primary's scheduled settle and
                    # re-enact its exit at the right moment.
                    cancel["cancelled"] = True
                    if not p_ok and p_end < h_end:
                        loop.schedule(p_end, cancel_primary(p_end, True))
                    else:
                        loop.schedule(h_end, cancel_primary(h_end, False))
                    loop.schedule(h_end, win_fire)
                else:
                    # Both die.  The later kill drives the retry.
                    if p_end <= h_end:
                        cancel["cancelled"] = True
                        loop.schedule(p_end, cancel_primary(p_end, True))
                        loop.schedule(h_end, hedge_killed_retry)
                    else:
                        loop.schedule(h_end, drop(h_end, True))
                        # The primary's own settle_killed still fires at p_end
                        # and retries as usual.

            return fire

        def start_function(name: str, start: float, attempt: int) -> Callable[[], None]:
            def fire() -> None:
                if state["dead"]:
                    return
                record = records[name]
                if record.status is ExecutionStatus.SKIPPED:
                    finish_function(name, start)
                    return
                if any(p in failed for p in self._predecessors[name]):
                    # Upstream terminal (injected) failure: skip this work too.
                    failed.add(name)
                    finish_function(name, start)
                    return
                penalty = 0.0
                container = None
                if pool is not None:
                    container, cold = pool.acquire(name, record.config, start)
                    if cold:
                        penalty = self._cold_latency[name]
                        carry.cold_count += 1
                        carry.cold_seconds += penalty
                carry.attempts += 1
                if record.status is ExecutionStatus.OOM:
                    # Configuration-caused OOM: deterministic, so retrying is
                    # pointless — mirror the fault-free path (container dies,
                    # never released; the trace already bills and skips).
                    oom_outcome = InvocationOutcome(
                        fault=None,
                        elapsed_seconds=penalty + record.runtime_seconds,
                        completed=True,
                    )
                    end = start + oom_outcome.elapsed_seconds
                    running[name] = (container, start, record.config)
                    loop.schedule(
                        end,
                        settle_completed(
                            name, end, oom_outcome, record, release_container=False
                        ),
                    )
                    return
                outcome = injector.plan_invocation(
                    index,
                    name,
                    attempt,
                    record.runtime_seconds,
                    cold_start_seconds=penalty,
                    incarnation=incarnation,
                )
                if guard is not None:
                    outcome = guard.cap_stage(name, outcome, budgets)
                end = start + outcome.elapsed_seconds
                # Track the attempt even without a container: an abort must
                # account its partial work whether or not cold starts are
                # simulated.
                running[name] = (container, start, record.config)
                cancel: Optional[Dict[str, bool]] = None
                if guard is not None and carry.hedges < guard.max_hedges_per_request:
                    hedge_after = guard.hedge_delay(name, outcome.elapsed_seconds)
                    if hedge_after is not None and start + hedge_after < end:
                        # The settle below gets a cancellation token so a
                        # winning hedge can suppress it; the race itself is
                        # resolved when the hedge launches.
                        cancel = {"cancelled": False}
                        loop.schedule(
                            start + hedge_after,
                            launch_hedge(
                                name, attempt, start + hedge_after, start,
                                outcome, end, record, cancel,
                            ),
                        )
                if outcome.completed:
                    loop.schedule(
                        end, settle_completed(name, end, outcome, record, cancel=cancel)
                    )
                else:
                    loop.schedule(
                        end,
                        settle_killed(name, end, attempt, outcome, record, cancel=cancel),
                    )

            return fire

        def abort(now: float) -> None:
            """Node failure took this request's placement: lose all work."""
            state["dead"] = True
            for name, (container, started_at, config) in running.items():
                elapsed = now - started_at
                if elapsed > 0:
                    carry.extra_cost += pricing.invocation_cost(elapsed, config)
                    carry.wasted_seconds += elapsed
                    carry.wasted_gb_seconds += config.memory_mb / 1024.0 * elapsed
                if pool is not None and container is not None:
                    pool.kill(container)
            running.clear()
            for elapsed, base_cost, config in done_work:
                # Completed work must be redone from scratch by the next
                # incarnation, whose trace cost bills it again — so charge
                # (and count as waste) the aborted incarnation's share here.
                carry.extra_cost += base_cost
                carry.wasted_seconds += elapsed
                carry.wasted_gb_seconds += config.memory_mb / 1024.0 * elapsed
            carry.count_fault(FaultKind.NODE_FAILURE)
            carry.restarts += 1

        register_abort(index, abort)

        roots = [name for name, pending in waiting.items() if pending == 0]
        if not roots:
            complete_request()
            return
        for name in roots:
            loop.schedule(dispatch_time, start_function(name, dispatch_time, 1))

    # -- the event-driven run ------------------------------------------------------
    def run(
        self,
        requests: Iterable[RequestArrival],
        configuration_for: Callable[[RequestArrival], WorkflowConfiguration],
        rng: Optional[RngStream] = None,
        duration_seconds: Optional[float] = None,
        fault_rng: Optional[RngStream] = None,
        controller=None,
    ) -> ServingResult:
        """Serve the whole stream and return outcomes plus metrics.

        Parameters
        ----------
        requests:
            The request stream; arrivals are processed in time order (equal
            timestamps keep stream order).
        configuration_for:
            Per-arrival configuration callback — constant for fixed
            configurations, or the input-aware engine's dispatcher.
        rng:
            Optional noise stream; children are derived per request index so
            results do not depend on dispatch interleaving.
        duration_seconds:
            Nominal traffic duration used for the offered-rate metric;
            defaults to the last arrival time.  The run itself always drains:
            queued work completes past the horizon.
        fault_rng:
            Optional stream overriding the fault plan's own seed (the
            default derives the schedule from ``faults.seed``, so two runs
            of the same simulator are identical).
        controller:
            Optional :class:`~repro.control.controller.ReconfigurationController`
            closing the monitoring → drift-detection → re-tune → rollout loop
            *inside* this run.  When present it owns configuration selection:
            each arrival is assigned the controller's active (or canary)
            configuration version instead of ``configuration_for``, each
            completion feeds the controller's monitor (and may trigger a
            re-tune), and completed outcomes carry their ``config_version``.
            All controller work happens inline within existing arrival and
            completion events — no extra events are scheduled — so a
            controller that never re-tunes (e.g. a ``NullDriftDetector``)
            leaves the run byte-identical to a static one.
        """
        request_list = list(requests)
        loop = EventLoop()
        ledger = _ClusterLedger(self.cluster)
        queue: Deque[Tuple[int, RequestArrival, WorkflowConfiguration]] = deque()
        outcomes: List[ServedRequest] = []
        rejected: List[RequestArrival] = []
        autoscaler = (
            _Autoscaler(self.container_pool, self.options.autoscaler)
            if self.options.autoscale
            else None
        )
        pending_arrivals = len(request_list)
        plan = self.faults
        injector = (
            FaultInjector(plan, fault_rng)
            if plan is not None and not plan.is_empty
            else None
        )
        policy = self.protection
        guard = (
            ProtectionGuard(
                policy,
                function_names=self._topo_order,
                slo_limit_seconds=(
                    self.slo.latency_limit if self.slo is not None else None
                ),
                cold_latency=self._cold_latency,
                topo_order=self._topo_order,
                predecessors=self._predecessors,
            )
            if policy is not None and not policy.is_empty
            else None
        )
        if guard is not None and injector is None:
            # Protected runs need the per-attempt machinery (deadline kills,
            # hedges, retries) even without injected faults: borrow the
            # faulty launch path with an empty plan, which perturbs nothing.
            injector = FaultInjector(FaultPlan.none(seed=policy.seed), fault_rng)
        rejection_causes: Dict[str, int] = {}

        def count_rejection(cause: str) -> None:
            rejection_causes[cause] = rejection_causes.get(cause, 0) + 1
        # Fault bookkeeping: abort callbacks of in-flight launches, counters
        # carried across node-failure incarnations, and the failure count.
        inflight_aborts: Dict[int, Callable[[float], None]] = {}
        carries: Dict[int, _RequestCarry] = {}
        dispatched: Dict[int, Tuple[RequestArrival, WorkflowConfiguration]] = {}
        node_failure_count = 0

        if controller is not None:
            controller.bind(pool=self.container_pool)

        def finish_request(outcome: ServedRequest) -> None:
            ledger.release(outcome.index, loop.now)
            if controller is not None:
                outcome.config_version = controller.version_of(outcome.index)
            outcomes.append(outcome)
            inflight_aborts.pop(outcome.index, None)
            carries.pop(outcome.index, None)
            dispatched.pop(outcome.index, None)
            if guard is not None:
                guard.observe_completion(outcome.service_seconds)
            if autoscaler is not None:
                autoscaler.observe_service(loop.now, outcome.service_seconds)
            if controller is not None:
                # May fire drift detection, an inline re-tune and a rollout
                # step — all in simulated-zero time within this event.
                controller.observe_completion(loop.now, outcome)
            try_dispatch()

        def try_dispatch() -> None:
            # Strict FIFO admission: stop at the first request that does not
            # fit so later (possibly smaller) requests cannot starve it.
            while queue:
                index, request, configuration = queue[0]
                if not ledger.try_reserve(index, configuration, loop.now):
                    if ledger.active == 0 and not ledger.has_down_nodes:
                        # Fits on no node even with the cluster empty: it can
                        # never be served, so drop it instead of deadlocking
                        # the queue.  (With a node down, wait for recovery
                        # instead — the capacity may come back.)
                        queue.popleft()
                        rejected.append(request)
                        count_rejection("queue-full")
                        if controller is not None:
                            controller.observe_rejection(loop.now, index)
                        continue
                    break
                queue.popleft()
                if guard is not None:
                    guard.observe_dispatch(loop.now)
                request_rng = rng.child("request", index) if rng is not None else None
                if injector is None:
                    self._launch(
                        loop, index, request, configuration, loop.now, request_rng,
                        finish_request,
                    )
                    continue
                carry = carries.get(index)
                if carry is None:
                    carry = _RequestCarry()
                    carries[index] = carry
                dispatched[index] = (request, configuration)
                self._launch_faulty(
                    loop, injector, index, request, configuration, loop.now,
                    request_rng, finish_request,
                    lambda i, fn: inflight_aborts.__setitem__(i, fn), carry,
                    guard=guard,
                )

        def arrive(index: int, request: RequestArrival) -> Callable[[], None]:
            def fire() -> None:
                nonlocal pending_arrivals
                pending_arrivals -= 1
                if autoscaler is not None:
                    autoscaler.observe_arrival(loop.now)
                if controller is not None:
                    # The controller assigns the configuration (active
                    # version, or the canary during a rollout) at arrival
                    # time; a later node-failure re-queue keeps it.
                    controller.observe_arrival(loop.now, request)
                    configuration = controller.assign(index, request)
                else:
                    configuration = configuration_for(request)
                if guard is not None:
                    # Protection vets the arrival before it can queue: an
                    # open breaker, an active shed level, or an admission
                    # verdict rejects it outright with its cause.
                    cause = guard.admit(
                        loop.now, request.input_class, len(queue), ledger.active
                    )
                    if cause is not None:
                        rejected.append(request)
                        count_rejection(cause)
                        if controller is not None:
                            controller.observe_rejection(loop.now, index)
                        return
                queue.append((index, request, configuration))
                try_dispatch()
                # The capacity bounds *waiting* requests: an arrival that
                # dispatched immediately never counts against it (so
                # queue_capacity=0 models a serve-or-reject loss system).
                if (
                    self.options.queue_capacity is not None
                    and len(queue) > self.options.queue_capacity
                ):
                    dropped_index, dropped, _ = queue.pop()
                    rejected.append(dropped)
                    count_rejection("queue-full")
                    if controller is not None:
                        controller.observe_rejection(loop.now, dropped_index)

            return fire

        for index, request in enumerate(request_list):
            loop.schedule(request.arrival_time, arrive(index, request))

        if duration_seconds is None:
            duration_seconds = max((r.arrival_time for r in request_list), default=0.0)

        if injector is not None and plan is not None and self.cluster is not None:

            def node_failure(node_name: str) -> Callable[[], None]:
                def fire() -> None:
                    nonlocal node_failure_count
                    if not self.cluster.node(node_name).healthy:
                        return  # struck while already down
                    affected = ledger.fail_node(node_name, loop.now)
                    node_failure_count += 1
                    loop.schedule_after(
                        plan.node_recovery_seconds, lambda: recover(node_name)
                    )
                    # Abort every in-flight request that lost its placement
                    # and re-queue it at the front (it was admitted first);
                    # reversed() keeps the original index order at the head.
                    for request_id in reversed(affected):
                        abort_fn = inflight_aborts.pop(request_id, None)
                        if abort_fn is None:
                            continue
                        abort_fn(loop.now)
                        victim_request, victim_config = dispatched.pop(request_id)
                        queue.appendleft((request_id, victim_request, victim_config))
                    try_dispatch()

                return fire

            def recover(node_name: str) -> None:
                ledger.restore_node(node_name, loop.now)
                try_dispatch()

            for failure_time, node_name in injector.node_failure_schedule(
                duration_seconds, [node.name for node in self.cluster.nodes]
            ):
                loop.schedule(failure_time, node_failure(node_name))

        if autoscaler is not None:

            def autoscale_tick() -> None:
                autoscaler.tick(loop.now)
                # Keep ticking only while there is (or will be) work; the
                # loop must drain once the last request completes.
                if pending_arrivals > 0 or queue or ledger.active > 0:
                    loop.schedule_after(self.options.autoscaler.interval_seconds, autoscale_tick)

            loop.schedule_after(self.options.autoscaler.interval_seconds, autoscale_tick)

        loop.run()
        ledger.advance(loop.now)
        outcomes.sort(key=lambda o: o.index)
        metrics = self._summarize(
            outcomes, rejected, ledger, duration_seconds, len(request_list),
            node_failures=node_failure_count,
            rejection_causes=rejection_causes,
        )
        protection_events: List[Tuple[float, str, str]] = []
        if guard is not None:
            metrics.breaker_opens = guard.breaker_opens
            metrics.deadline_kills = guard.deadline_kills
            protection_events = guard.drain_events()
            if controller is not None and hasattr(controller, "observe_protection"):
                for when, kind, detail in protection_events:
                    controller.observe_protection(when, kind, detail)
        return ServingResult(
            outcomes=outcomes,
            rejected=rejected,
            metrics=metrics,
            autoscaler_decisions=autoscaler.decisions if autoscaler is not None else [],
            protection_events=protection_events,
        )

    # -- metrics ---------------------------------------------------------------
    def _summarize(
        self,
        outcomes: Sequence[ServedRequest],
        rejected: Sequence[RequestArrival],
        ledger: _ClusterLedger,
        duration_seconds: float,
        offered: int,
        node_failures: int = 0,
        rejection_causes: Optional[Dict[str, int]] = None,
    ) -> ServingMetrics:
        latencies = [o.latency_seconds for o in outcomes]
        queueing = [o.queueing_delay for o in outcomes]
        costs = [o.cost for o in outcomes]
        # Sort once per metric list (numpy sorts the same float values the
        # builtin would, and the nearest-rank lookup only reads elements) —
        # three percentile calls per list would re-sort each time.
        latencies_sorted = np.sort(np.asarray(latencies, dtype=np.float64))
        queueing_sorted = np.sort(np.asarray(queueing, dtype=np.float64))
        completed = len(outcomes)
        makespan = max((o.completion_time for o in outcomes), default=0.0)
        slo_limit = self.slo.latency_limit if self.slo is not None else None
        attainment: Optional[float] = None
        if slo_limit is not None and completed:
            attainment = sum(1 for l in latencies if l <= slo_limit) / completed
        cpu_util, mem_util, mean_concurrency = ledger.utilization()
        successes = sum(1 for o in outcomes if o.succeeded)
        total_attempts = sum(o.attempts for o in outcomes)
        total_base = sum(o.base_invocations for o in outcomes)
        if rejection_causes is None:
            # Callers predating the protection layer (e.g. the batched
            # engine) reject only on queue pressure.
            rejection_causes = {"queue-full": len(rejected)} if rejected else {}
        return ServingMetrics(
            duration_seconds=duration_seconds,
            offered=offered,
            completed=completed,
            rejected=len(rejected),
            failed=sum(1 for o in outcomes if not o.succeeded),
            makespan_seconds=makespan,
            offered_rate_rps=offered / duration_seconds if duration_seconds > 0 else 0.0,
            throughput_rps=completed / makespan if makespan > 0 else 0.0,
            latency_mean_seconds=sum(latencies) / completed if completed else float("nan"),
            latency_p50_seconds=_nearest_rank(latencies_sorted, 50),
            latency_p95_seconds=_nearest_rank(latencies_sorted, 95),
            latency_p99_seconds=_nearest_rank(latencies_sorted, 99),
            latency_max_seconds=float(latencies_sorted[-1]) if completed else float("nan"),
            queueing_mean_seconds=sum(queueing) / completed if completed else float("nan"),
            queueing_p95_seconds=_nearest_rank(queueing_sorted, 95),
            queueing_max_seconds=float(queueing_sorted[-1]) if completed else float("nan"),
            slo_limit_seconds=slo_limit,
            slo_attainment=attainment,
            cold_start_request_rate=(
                sum(1 for o in outcomes if o.cold_start_count > 0) / completed
                if completed
                else 0.0
            ),
            cold_start_invocations=sum(o.cold_start_count for o in outcomes),
            mean_cost_per_request=sum(costs) / completed if completed else float("nan"),
            total_cost=sum(costs),
            cpu_utilization=cpu_util,
            memory_utilization=mem_util,
            peak_concurrency=ledger.peak_active,
            mean_concurrency=mean_concurrency,
            goodput_rps=successes / makespan if makespan > 0 else 0.0,
            availability=successes / offered if offered else 1.0,
            retry_amplification=(
                total_attempts / total_base if total_base else 1.0
            ),
            wasted_seconds=sum(o.wasted_seconds for o in outcomes),
            wasted_gb_seconds=sum(o.wasted_gb_seconds for o in outcomes),
            faults_injected=sum(
                sum(o.fault_counts.values()) for o in outcomes
            ),
            node_failures=node_failures,
            rejected_by_cause=dict(rejection_causes),
            hedges_launched=sum(o.hedges for o in outcomes),
            hedge_wins=sum(o.hedge_wins for o in outcomes),
        )

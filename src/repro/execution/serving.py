"""Event-driven serving layer: contended request streams over finite capacity.

The paper's input-aware engine (§IV-D, Fig. 8) is evaluated on request
*streams*, and the ROADMAP's north star is heavy traffic — so this module
models how serverless platforms are actually exercised: concurrent requests
contending for finite cluster capacity and a time-aware warm-container pool.

The :class:`ServingSimulator` drives a request stream through a discrete
:class:`~repro.execution.events.EventLoop`:

* Each arrival asks the cluster for capacity (one container per function of
  its configuration).  If the cluster cannot host the request it joins a FIFO
  queue; the wait is recorded as *queueing delay*.
* Dispatched requests obtain their pure service trace from the PR-1
  :class:`~repro.execution.backend.EvaluationBackend` layer at trigger time 0
  — deterministic traces are memoized; noisy runs bypass the cache — and the
  serving layer replays that trace at the dispatch time, overlaying per
  function cold starts from a shared, time-aware
  :class:`~repro.execution.container.ContainerPool`.
* On completion the capacity is released and queued requests are admitted in
  order.
* An optional autoscaler observes the arrival rate and resizes the warm pool
  (Little's-law target), trading cold starts against idle containers.

Everything is deterministic under a fixed seed: arrivals are generated from
:class:`~repro.utils.rng.RngStream` children, events at equal timestamps run
in insertion order, and per-request noise streams are derived from the
request index.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.execution.backend import EvaluationBackend, SimulatorBackend
from repro.execution.cluster import Cluster, Node
from repro.execution.container import ContainerPool
from repro.execution.events import EventLoop, RequestArrival
from repro.execution.executor import WorkflowExecutor
from repro.execution.trace import ExecutionStatus, ExecutionTrace
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = [
    "AutoscalerOptions",
    "ServingOptions",
    "ServedRequest",
    "ServingMetrics",
    "ServingResult",
    "ServingSimulator",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` is in percent (p99 → ``q=99``).  Returns ``nan`` on empty input.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be between 0 and 100")
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class AutoscalerOptions:
    """Reactive warm-pool sizing policy.

    Every ``interval_seconds`` the autoscaler estimates the arrival rate over
    the trailing ``window_seconds`` and retargets the per-function warm-pool
    cap at ``ceil(rate × mean_service_time × headroom)`` (Little's law),
    clamped to ``[min_containers, max_containers]``.  Until the first request
    completes there is no service-time observation and the cap is left alone.
    """

    interval_seconds: float = 30.0
    window_seconds: float = 60.0
    headroom: float = 1.25
    min_containers: int = 1
    max_containers: int = 256

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0 or self.window_seconds <= 0:
            raise ValueError("autoscaler intervals must be positive")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")
        if not 1 <= self.min_containers <= self.max_containers:
            raise ValueError("need 1 <= min_containers <= max_containers")


@dataclass(frozen=True)
class ServingOptions:
    """Tunable behaviour of the serving simulator.

    Attributes
    ----------
    simulate_cold_starts:
        Overlay per-function cold starts from the shared warm pool.
    queue_capacity:
        Maximum *waiting* requests; an arrival that cannot dispatch once the
        queue is full is rejected (``0`` models a serve-or-reject loss
        system).  ``None`` queues without bound.
    autoscale:
        Enable the reactive warm-pool autoscaler.
    autoscaler:
        Policy knobs used when ``autoscale`` is on.
    """

    simulate_cold_starts: bool = True
    queue_capacity: Optional[int] = None
    autoscale: bool = False
    autoscaler: AutoscalerOptions = field(default_factory=AutoscalerOptions)


@dataclass
class ServedRequest:
    """Outcome of one request that made it through the serving layer."""

    index: int
    request: RequestArrival
    configuration: WorkflowConfiguration
    dispatch_time: float
    completion_time: float
    cost: float
    cold_start_count: int = 0
    cold_start_seconds: float = 0.0
    succeeded: bool = True
    service_trace: Optional[ExecutionTrace] = None

    @property
    def arrival_time(self) -> float:
        """When the request entered the system."""
        return self.request.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for cluster capacity."""
        return self.dispatch_time - self.request.arrival_time

    @property
    def service_seconds(self) -> float:
        """Time from dispatch to completion (cold starts included)."""
        return self.completion_time - self.dispatch_time

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency the client observes (queueing included)."""
        return self.completion_time - self.request.arrival_time


@dataclass
class ServingMetrics:
    """Tail-latency / SLO / cost summary of one serving run."""

    duration_seconds: float
    offered: int
    completed: int
    rejected: int
    failed: int
    makespan_seconds: float
    offered_rate_rps: float
    throughput_rps: float
    latency_mean_seconds: float
    latency_p50_seconds: float
    latency_p95_seconds: float
    latency_p99_seconds: float
    latency_max_seconds: float
    queueing_mean_seconds: float
    queueing_p95_seconds: float
    queueing_max_seconds: float
    slo_limit_seconds: Optional[float]
    slo_attainment: Optional[float]
    cold_start_request_rate: float
    cold_start_invocations: int
    mean_cost_per_request: float
    total_cost: float
    cpu_utilization: Optional[float]
    memory_utilization: Optional[float]
    peak_concurrency: int
    mean_concurrency: float


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    outcomes: List[ServedRequest]
    rejected: List[RequestArrival]
    metrics: ServingMetrics
    autoscaler_decisions: List[Tuple[float, int]] = field(default_factory=list)

    def latencies(self) -> List[float]:
        """Per-request end-to-end latencies in arrival order."""
        return [o.latency_seconds for o in self.outcomes]

    def mean_latency_by_class(self) -> Dict[str, float]:
        """Average client-observed latency per input class."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            name = outcome.request.input_class
            sums[name] = sums.get(name, 0.0) + outcome.latency_seconds
            counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def mean_cost_by_class(self) -> Dict[str, float]:
        """Average request cost per input class."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            name = outcome.request.input_class
            sums[name] = sums.get(name, 0.0) + outcome.cost
            counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}


class _ClusterLedger:
    """Per-request capacity reservations on a cluster, with utilization.

    A request reserves one container per workflow function for its full
    residence time; placement follows the affinity-aware heuristic (minimise
    the node's CPU/memory utilisation imbalance after hosting the container).
    Placements are keyed ``function#request`` so concurrent requests running
    the same workflow release exactly their own capacity.  The ledger also
    integrates reserved vCPU/memory over time for utilization reporting.
    """

    def __init__(self, cluster: Optional[Cluster]) -> None:
        self.cluster = cluster
        self.active = 0
        self.peak_active = 0
        self._last_time = 0.0
        self._cpu_area = 0.0
        self._mem_area = 0.0
        self._concurrency_area = 0.0
        self._placements: Dict[int, List[Tuple[Node, str]]] = {}

    # -- time integration -------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate utilization up to ``now`` (call before any change)."""
        dt = now - self._last_time
        if dt <= 0:
            return
        if self.cluster is not None:
            self._cpu_area += sum(n.vcpu_used for n in self.cluster.nodes) * dt
            self._mem_area += sum(n.memory_used_mb for n in self.cluster.nodes) * dt
        self._concurrency_area += self.active * dt
        self._last_time = now

    # -- reservations -----------------------------------------------------------
    def try_reserve(
        self, request_id: int, configuration: WorkflowConfiguration, now: float
    ) -> bool:
        """Reserve capacity for one request; rolls back fully on failure."""
        self.advance(now)
        if self.cluster is None:
            self.active += 1
            self.peak_active = max(self.peak_active, self.active)
            return True
        placed: List[Tuple[Node, str]] = []
        for function_name, config in configuration.items():
            best: Optional[Node] = None
            best_key: Optional[Tuple[float, float, str]] = None
            for node in self.cluster.nodes:
                if not node.can_fit(config):
                    continue
                projected_cpu = (node.vcpu_used + config.vcpu) / node.vcpu_capacity
                projected_mem = (
                    node.memory_used_mb + config.memory_mb
                ) / node.memory_capacity_mb
                key = (
                    round(abs(projected_cpu - projected_mem), 9),
                    round(projected_cpu + projected_mem, 9),
                    node.name,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = node
            if best is None:
                for node, name in placed:
                    node.remove(name)
                return False
            name = f"{function_name}#{request_id}"
            best.place(name, config)
            placed.append((best, name))
        self._placements[request_id] = placed
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        return True

    def release(self, request_id: int, now: float) -> None:
        """Give a finished request's capacity back."""
        self.advance(now)
        self.active -= 1
        placed = self._placements.pop(request_id, None)
        if placed is not None:
            for node, name in placed:
                node.remove(name)

    # -- reporting --------------------------------------------------------------
    def utilization(self) -> Tuple[Optional[float], Optional[float], float]:
        """Time-averaged (cpu, memory, concurrency) over the observed span."""
        span = self._last_time
        if span <= 0:
            return (None, None, 0.0) if self.cluster is None else (0.0, 0.0, 0.0)
        mean_concurrency = self._concurrency_area / span
        if self.cluster is None:
            return None, None, mean_concurrency
        cpu = self._cpu_area / (self.cluster.total_vcpu_capacity * span)
        mem = self._mem_area / (self.cluster.total_memory_capacity_mb * span)
        return cpu, mem, mean_concurrency


class _Autoscaler:
    """Reactive warm-pool sizing from the observed arrival rate."""

    def __init__(self, pool: ContainerPool, options: AutoscalerOptions) -> None:
        self.pool = pool
        self.options = options
        self.decisions: List[Tuple[float, int]] = []
        self._arrivals: Deque[float] = deque()
        self._service_sum = 0.0
        self._service_count = 0

    def observe_arrival(self, now: float) -> None:
        self._arrivals.append(now)

    def observe_service(self, seconds: float) -> None:
        self._service_sum += seconds
        self._service_count += 1

    def tick(self, now: float) -> None:
        while self._arrivals and self._arrivals[0] < now - self.options.window_seconds:
            self._arrivals.popleft()
        if self._service_count == 0:
            return
        rate = len(self._arrivals) / self.options.window_seconds
        mean_service = self._service_sum / self._service_count
        target = math.ceil(rate * mean_service * self.options.headroom)
        target = max(self.options.min_containers, min(self.options.max_containers, target))
        if target != self.pool.max_containers_per_function:
            self.pool.resize(target)
            self.decisions.append((now, target))


class ServingSimulator:
    """Serve a request stream against finite cluster and warm-pool capacity.

    Parameters
    ----------
    workflow:
        The DAG each request executes.
    executor:
        Supplies the performance model, pricing, and (by default) the shared
        warm pool.  Must not simulate cold starts itself — the serving layer
        overlays them so service traces stay memoizable.
    backend:
        Evaluation substrate for service traces; defaults to a plain
        :class:`SimulatorBackend` over ``executor``.  Pass a
        :class:`~repro.execution.backend.CachingBackend` stack to memoize.
    cluster:
        Finite capacity the requests contend for; ``None`` serves every
        request immediately (no queueing).
    container_pool:
        Warm pool for the cold-start overlay; defaults to the executor's own
        pool so backend statistics report the serving pool's counters.
    slo:
        End-to-end latency objective used for SLO-attainment reporting.
    options:
        Queueing / cold-start / autoscaling knobs.
    """

    def __init__(
        self,
        workflow: Workflow,
        executor: WorkflowExecutor,
        backend: Optional[EvaluationBackend] = None,
        cluster: Optional[Cluster] = None,
        container_pool: Optional[ContainerPool] = None,
        slo: Optional[SLO] = None,
        options: Optional[ServingOptions] = None,
    ) -> None:
        if executor.options.simulate_cold_starts:
            raise ValueError(
                "the serving layer overlays cold starts itself; build the "
                "executor with simulate_cold_starts=False"
            )
        self.workflow = workflow
        self.executor = executor
        self.backend = backend if backend is not None else SimulatorBackend(executor)
        self.cluster = cluster
        self.container_pool = (
            container_pool if container_pool is not None else executor.container_pool
        )
        self.slo = slo
        self.options = options if options is not None else ServingOptions()
        # The workflow is fixed for the simulator's lifetime: resolve the
        # per-function cold-start latencies, topological order and adjacency
        # once instead of on the per-request hot path.
        self._cold_latency = {
            spec.name: executor.cold_start_latency(spec.profile_name)
            for spec in workflow.functions
        }
        self._topo_order: List[str] = list(workflow.topological_order())
        self._predecessors: Dict[str, List[str]] = {
            name: list(workflow.predecessors(name)) for name in self._topo_order
        }
        self._successors: Dict[str, List[str]] = {name: [] for name in self._topo_order}
        for name, preds in self._predecessors.items():
            for pred in preds:
                self._successors[pred].append(name)

    # -- service-time reconstruction ---------------------------------------------
    def _launch(
        self,
        loop: EventLoop,
        index: int,
        request: RequestArrival,
        configuration: WorkflowConfiguration,
        dispatch_time: float,
        rng: Optional[RngStream],
        on_complete: Callable[[ServedRequest], None],
    ) -> None:
        """Replay one request's service trace on the event loop.

        The trace comes from the backend at trigger 0 (memoizable); each
        function is then re-enacted as events at its absolute start/finish
        times, acquiring warm containers at the true start and releasing them
        at the true finish — so overlapping requests can never share a
        container, exactly as on a real platform.  ``on_complete`` fires as a
        loop event at the request's completion time.
        """
        trace = self.backend.evaluate(
            self.workflow,
            configuration,
            input_scale=request.input_scale,
            rng=rng,
        )
        pool = self.container_pool if self.options.simulate_cold_starts else None
        records = trace.records
        finish: Dict[str, float] = {}
        waiting = {
            name: sum(1 for p in self._predecessors[name] if p in records)
            for name in self._topo_order
            if name in records
        }
        state = {
            "remaining": len(waiting),
            "completion": dispatch_time,
            "cold_count": 0,
            "cold_seconds": 0.0,
            "extra_cost": 0.0,
        }

        def finish_function(name: str, end: float) -> None:
            finish[name] = end
            state["completion"] = max(state["completion"], end)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                outcome = ServedRequest(
                    index=index,
                    request=request,
                    configuration=configuration,
                    dispatch_time=dispatch_time,
                    completion_time=state["completion"],
                    cost=trace.total_cost + state["extra_cost"],
                    cold_start_count=state["cold_count"],
                    cold_start_seconds=state["cold_seconds"],
                    succeeded=trace.succeeded,
                    service_trace=trace,
                )
                loop.schedule(state["completion"], lambda: on_complete(outcome))
                return
            for successor in self._successors[name]:
                if successor not in waiting:
                    continue
                waiting[successor] -= 1
                if waiting[successor] == 0:
                    start = max(
                        finish[p] for p in self._predecessors[successor] if p in finish
                    )
                    loop.schedule(start, run_function(successor, start))

        def run_function(name: str, start: float) -> Callable[[], None]:
            def fire() -> None:
                record = records[name]
                if record.status is ExecutionStatus.SKIPPED:
                    finish_function(name, start)
                    return
                penalty = 0.0
                container = None
                if pool is not None:
                    container, cold = pool.acquire(name, record.config, start)
                    if cold:
                        penalty = self._cold_latency[name]
                        state["cold_count"] += 1
                        state["cold_seconds"] += penalty
                end = start + penalty + record.runtime_seconds
                if container is not None:
                    if record.status is ExecutionStatus.OOM:
                        # The OOM kill destroys the container: never released.
                        pass
                    else:
                        # Released as an event at the true finish time, so a
                        # concurrent request cannot warm-hit a busy container.
                        loop.schedule(
                            end,
                            lambda c=container, t=end: pool.release(c, t),
                        )
                if penalty > 0.0:
                    # The cold start is billed like runtime on the same container.
                    state["extra_cost"] += self.executor.pricing.invocation_cost(
                        record.runtime_seconds + penalty, record.config
                    ) - self.executor.pricing.invocation_cost(
                        record.runtime_seconds, record.config
                    )
                finish_function(name, end)

            return fire

        roots = [name for name, pending in waiting.items() if pending == 0]
        if not roots:
            # Degenerate empty trace: complete immediately with zero work.
            loop.schedule(
                dispatch_time,
                lambda: on_complete(
                    ServedRequest(
                        index=index,
                        request=request,
                        configuration=configuration,
                        dispatch_time=dispatch_time,
                        completion_time=dispatch_time,
                        cost=trace.total_cost,
                        succeeded=trace.succeeded,
                        service_trace=trace,
                    )
                ),
            )
            return
        for name in roots:
            loop.schedule(dispatch_time, run_function(name, dispatch_time))

    # -- the event-driven run ------------------------------------------------------
    def run(
        self,
        requests: Iterable[RequestArrival],
        configuration_for: Callable[[RequestArrival], WorkflowConfiguration],
        rng: Optional[RngStream] = None,
        duration_seconds: Optional[float] = None,
    ) -> ServingResult:
        """Serve the whole stream and return outcomes plus metrics.

        Parameters
        ----------
        requests:
            The request stream; arrivals are processed in time order (equal
            timestamps keep stream order).
        configuration_for:
            Per-arrival configuration callback — constant for fixed
            configurations, or the input-aware engine's dispatcher.
        rng:
            Optional noise stream; children are derived per request index so
            results do not depend on dispatch interleaving.
        duration_seconds:
            Nominal traffic duration used for the offered-rate metric;
            defaults to the last arrival time.  The run itself always drains:
            queued work completes past the horizon.
        """
        request_list = list(requests)
        loop = EventLoop()
        ledger = _ClusterLedger(self.cluster)
        queue: Deque[Tuple[int, RequestArrival, WorkflowConfiguration]] = deque()
        outcomes: List[ServedRequest] = []
        rejected: List[RequestArrival] = []
        autoscaler = (
            _Autoscaler(self.container_pool, self.options.autoscaler)
            if self.options.autoscale
            else None
        )
        pending_arrivals = len(request_list)

        def finish_request(outcome: ServedRequest) -> None:
            ledger.release(outcome.index, loop.now)
            outcomes.append(outcome)
            if autoscaler is not None:
                autoscaler.observe_service(outcome.service_seconds)
            try_dispatch()

        def try_dispatch() -> None:
            # Strict FIFO admission: stop at the first request that does not
            # fit so later (possibly smaller) requests cannot starve it.
            while queue:
                index, request, configuration = queue[0]
                if not ledger.try_reserve(index, configuration, loop.now):
                    if ledger.active == 0:
                        # Fits on no node even with the cluster empty: it can
                        # never be served, so drop it instead of deadlocking
                        # the queue.
                        queue.popleft()
                        rejected.append(request)
                        continue
                    break
                queue.popleft()
                request_rng = rng.child("request", index) if rng is not None else None
                self._launch(
                    loop, index, request, configuration, loop.now, request_rng,
                    finish_request,
                )

        def arrive(index: int, request: RequestArrival) -> Callable[[], None]:
            def fire() -> None:
                nonlocal pending_arrivals
                pending_arrivals -= 1
                if autoscaler is not None:
                    autoscaler.observe_arrival(loop.now)
                queue.append((index, request, configuration_for(request)))
                try_dispatch()
                # The capacity bounds *waiting* requests: an arrival that
                # dispatched immediately never counts against it (so
                # queue_capacity=0 models a serve-or-reject loss system).
                if (
                    self.options.queue_capacity is not None
                    and len(queue) > self.options.queue_capacity
                ):
                    _, dropped, _ = queue.pop()
                    rejected.append(dropped)

            return fire

        for index, request in enumerate(request_list):
            loop.schedule(request.arrival_time, arrive(index, request))

        if autoscaler is not None:

            def autoscale_tick() -> None:
                autoscaler.tick(loop.now)
                # Keep ticking only while there is (or will be) work; the
                # loop must drain once the last request completes.
                if pending_arrivals > 0 or queue or ledger.active > 0:
                    loop.schedule_after(self.options.autoscaler.interval_seconds, autoscale_tick)

            loop.schedule_after(self.options.autoscaler.interval_seconds, autoscale_tick)

        loop.run()
        ledger.advance(loop.now)
        outcomes.sort(key=lambda o: o.index)
        if duration_seconds is None:
            duration_seconds = max((r.arrival_time for r in request_list), default=0.0)
        metrics = self._summarize(
            outcomes, rejected, ledger, duration_seconds, len(request_list)
        )
        return ServingResult(
            outcomes=outcomes,
            rejected=rejected,
            metrics=metrics,
            autoscaler_decisions=autoscaler.decisions if autoscaler is not None else [],
        )

    # -- metrics ---------------------------------------------------------------
    def _summarize(
        self,
        outcomes: Sequence[ServedRequest],
        rejected: Sequence[RequestArrival],
        ledger: _ClusterLedger,
        duration_seconds: float,
        offered: int,
    ) -> ServingMetrics:
        latencies = [o.latency_seconds for o in outcomes]
        queueing = [o.queueing_delay for o in outcomes]
        costs = [o.cost for o in outcomes]
        completed = len(outcomes)
        makespan = max((o.completion_time for o in outcomes), default=0.0)
        slo_limit = self.slo.latency_limit if self.slo is not None else None
        attainment: Optional[float] = None
        if slo_limit is not None and completed:
            attainment = sum(1 for l in latencies if l <= slo_limit) / completed
        cpu_util, mem_util, mean_concurrency = ledger.utilization()
        return ServingMetrics(
            duration_seconds=duration_seconds,
            offered=offered,
            completed=completed,
            rejected=len(rejected),
            failed=sum(1 for o in outcomes if not o.succeeded),
            makespan_seconds=makespan,
            offered_rate_rps=offered / duration_seconds if duration_seconds > 0 else 0.0,
            throughput_rps=completed / makespan if makespan > 0 else 0.0,
            latency_mean_seconds=sum(latencies) / completed if completed else float("nan"),
            latency_p50_seconds=percentile(latencies, 50),
            latency_p95_seconds=percentile(latencies, 95),
            latency_p99_seconds=percentile(latencies, 99),
            latency_max_seconds=max(latencies) if latencies else float("nan"),
            queueing_mean_seconds=sum(queueing) / completed if completed else float("nan"),
            queueing_p95_seconds=percentile(queueing, 95),
            queueing_max_seconds=max(queueing) if queueing else float("nan"),
            slo_limit_seconds=slo_limit,
            slo_attainment=attainment,
            cold_start_request_rate=(
                sum(1 for o in outcomes if o.cold_start_count > 0) / completed
                if completed
                else 0.0
            ),
            cold_start_invocations=sum(o.cold_start_count for o in outcomes),
            mean_cost_per_request=sum(costs) / completed if completed else float("nan"),
            total_cost=sum(costs),
            cpu_utilization=cpu_util,
            memory_utilization=mem_util,
            peak_concurrency=ledger.peak_active,
            mean_concurrency=mean_concurrency,
        )

"""Pluggable drift detectors that decide *when* to re-tune.

A detector observes the monitor's :class:`~repro.control.monitor.WindowSnapshot`
stream and fires a re-tune signal when the traffic no longer resembles the
one the active configuration was tuned for.  Three families are built in:

* ``threshold`` — compares one or more window metrics against the baseline
  captured at the last re-tune; fires on a relative deviation beyond a
  threshold (SLO attainment is compared absolutely).
* ``page-hinkley`` — a two-sided Page–Hinkley / CUSUM-style cumulative test
  on one metric: small persistent shifts accumulate until the cumulative
  deviation from the running mean exceeds a threshold, catching slow drifts
  a static threshold misses.
* ``scheduled`` — fires at a fixed cadence regardless of the traffic
  (periodic re-tuning).

``null`` never fires — an adaptive run with a ``NullDriftDetector`` is
byte-identical to a static one (golden-tested).

Detectors are purely deterministic state machines over the snapshots they
observe; they carry no randomness of their own.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

from repro.control.monitor import WindowSnapshot

__all__ = [
    "DRIFT_DETECTOR_NAMES",
    "DriftDetector",
    "NullDriftDetector",
    "ThresholdDriftDetector",
    "PageHinkleyDetector",
    "ScheduledDriftDetector",
    "build_drift_detector",
]

#: Detector names understood by :func:`build_drift_detector` (and the CLI).
DRIFT_DETECTOR_NAMES: Tuple[str, ...] = (
    "null",
    "threshold",
    "page-hinkley",
    "scheduled",
)

#: Snapshot attributes a metric-driven detector may watch.
_METRIC_NAMES: Tuple[str, ...] = (
    "arrival_rate_rps",
    "mean_input_scale",
    "latency_mean_seconds",
    "latency_p99_seconds",
    "queueing_mean_seconds",
    "mean_cost",
    "slo_attainment",
)


def _metric_value(snapshot: WindowSnapshot, metric: str) -> Optional[float]:
    if metric not in _METRIC_NAMES:
        raise KeyError(
            f"unknown drift metric {metric!r}; expected one of {', '.join(_METRIC_NAMES)}"
        )
    value = getattr(snapshot, metric)
    if value is None:
        return None
    value = float(value)
    if value != value:  # NaN: window empty on that side
        return None
    return value


class DriftDetector(abc.ABC):
    """Observes window snapshots and signals when a re-tune is warranted."""

    #: Short name used in reports and factory lookups.
    name: str = "detector"

    #: Whether :meth:`observe` reads the snapshot at all.  The controller
    #: skips building the (sorted, fully aggregated) window snapshot for
    #: detectors that declare ``False`` — a ``NullDriftDetector`` then adds
    #: zero per-completion cost to the serving hot path.
    requires_snapshot: bool = True

    @abc.abstractmethod
    def observe(self, snapshot: WindowSnapshot) -> Optional[str]:
        """Inspect one snapshot; a non-``None`` reason string signals drift."""

    def rebaseline(self, snapshot: WindowSnapshot) -> None:
        """Adopt ``snapshot`` as the new post-re-tune reference state."""

    def describe(self) -> str:
        """Human-readable one-liner."""
        return self.name


class NullDriftDetector(DriftDetector):
    """Never fires: the adaptive machinery idles and serving stays static."""

    name = "null"
    requires_snapshot = False

    def observe(self, snapshot: WindowSnapshot) -> Optional[str]:
        return None


class ThresholdDriftDetector(DriftDetector):
    """Relative deviation of watched metrics against the last baseline.

    Parameters
    ----------
    metrics:
        Snapshot attributes to watch.  The default watches the two traffic
        descriptors a re-tune can actually act on (arrival rate and input
        mix); add ``"slo_attainment"`` to also fire on attainment collapses
        whose traffic looks unchanged (compared absolutely, via
        ``attainment_drop``).
    relative_threshold:
        Fractional deviation from the baseline that counts as drift for
        ratio-scaled metrics (rate, scale, latency, cost).
    attainment_drop:
        Absolute drop in SLO attainment that counts as drift.
    """

    name = "threshold"

    def __init__(
        self,
        metrics: Tuple[str, ...] = ("arrival_rate_rps", "mean_input_scale"),
        relative_threshold: float = 0.3,
        attainment_drop: float = 0.1,
    ) -> None:
        if not metrics:
            raise ValueError("the threshold detector needs at least one metric")
        for metric in metrics:
            if metric not in _METRIC_NAMES:
                raise KeyError(
                    f"unknown drift metric {metric!r}; "
                    f"expected one of {', '.join(_METRIC_NAMES)}"
                )
        if relative_threshold <= 0:
            raise ValueError("relative_threshold must be positive")
        if attainment_drop <= 0:
            raise ValueError("attainment_drop must be positive")
        self.metrics = tuple(metrics)
        self.relative_threshold = float(relative_threshold)
        self.attainment_drop = float(attainment_drop)
        self._baseline: Dict[str, float] = {}

    def rebaseline(self, snapshot: WindowSnapshot) -> None:
        self._baseline = {}
        for metric in self.metrics:
            value = _metric_value(snapshot, metric)
            if value is not None:
                self._baseline[metric] = value

    def observe(self, snapshot: WindowSnapshot) -> Optional[str]:
        if not self._baseline:
            # First observation doubles as the baseline: drift is a change
            # *relative to what the active configuration was tuned under*.
            self.rebaseline(snapshot)
            return None
        for metric in self.metrics:
            value = _metric_value(snapshot, metric)
            reference = self._baseline.get(metric)
            if value is None or reference is None:
                continue
            if metric == "slo_attainment":
                if reference - value > self.attainment_drop:
                    return (
                        f"slo_attainment dropped {reference:.3f} -> {value:.3f}"
                    )
                continue
            scale = max(abs(reference), 1e-12)
            deviation = abs(value - reference) / scale
            if deviation > self.relative_threshold:
                return (
                    f"{metric} moved {reference:.4g} -> {value:.4g} "
                    f"({deviation * 100:.0f}% > {self.relative_threshold * 100:.0f}%)"
                )
        return None

    def describe(self) -> str:
        return (
            f"threshold({', '.join(self.metrics)} "
            f"@ ±{self.relative_threshold * 100:.0f}%)"
        )


class PageHinkleyDetector(DriftDetector):
    """Two-sided Page–Hinkley cumulative test on one window metric.

    Maintains the running mean of the observed metric and the cumulative sum
    of deviations from it (minus a drift-insensitivity margin ``delta``).  A
    persistent shift makes the cumulative sum run away from its historical
    extremum; when the gap exceeds ``threshold × baseline`` the detector
    fires.  The threshold scales with the baseline metric magnitude so one
    parametrisation works across metrics of very different units.
    """

    name = "page-hinkley"

    def __init__(
        self,
        metric: str = "arrival_rate_rps",
        delta: float = 0.02,
        threshold: float = 1.0,
        min_observations: int = 5,
    ) -> None:
        if metric not in _METRIC_NAMES:
            raise KeyError(
                f"unknown drift metric {metric!r}; "
                f"expected one of {', '.join(_METRIC_NAMES)}"
            )
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        self.metric = metric
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_observations = int(min_observations)
        self._reset()

    def _reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        # Two one-sided statistics: the margin is *subtracted* on the upward
        # accumulator and *added* on the downward one, so pure noise decays
        # both toward their extrema instead of drifting one of them.
        self._cum_up = 0.0
        self._min_cum_up = 0.0
        self._cum_down = 0.0
        self._max_cum_down = 0.0

    def rebaseline(self, snapshot: WindowSnapshot) -> None:
        self._reset()

    def observe(self, snapshot: WindowSnapshot) -> Optional[str]:
        value = _metric_value(snapshot, self.metric)
        if value is None:
            return None
        self._count += 1
        self._mean += (value - self._mean) / self._count
        margin = self.delta * max(abs(self._mean), 1e-12)
        deviation = value - self._mean
        self._cum_up += deviation - margin
        self._min_cum_up = min(self._min_cum_up, self._cum_up)
        self._cum_down += deviation + margin
        self._max_cum_down = max(self._max_cum_down, self._cum_down)
        if self._count < self.min_observations:
            return None
        limit = self.threshold * max(abs(self._mean), 1e-12)
        upward = self._cum_up - self._min_cum_up
        downward = self._max_cum_down - self._cum_down
        if upward > limit:
            return f"{self.metric} drifting upward (PH {upward:.4g} > {limit:.4g})"
        if downward > limit:
            return f"{self.metric} drifting downward (PH {downward:.4g} > {limit:.4g})"
        return None

    def describe(self) -> str:
        return f"page-hinkley({self.metric}, λ={self.threshold:g})"


class ScheduledDriftDetector(DriftDetector):
    """Fires at a fixed cadence of the event-loop clock (periodic re-tune)."""

    name = "scheduled"

    def __init__(self, interval_seconds: float = 120.0) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = float(interval_seconds)
        self._next_fire = self.interval_seconds

    def rebaseline(self, snapshot: WindowSnapshot) -> None:
        self._next_fire = snapshot.time + self.interval_seconds

    def observe(self, snapshot: WindowSnapshot) -> Optional[str]:
        if snapshot.time >= self._next_fire:
            return f"scheduled re-tune (every {self.interval_seconds:g}s)"
        return None

    def describe(self) -> str:
        return f"scheduled(every {self.interval_seconds:g}s)"


def build_drift_detector(name: str, **options) -> DriftDetector:
    """Instantiate a drift detector by name (CLI / settings entry point)."""
    key = name.strip().lower()
    if key == "null":
        return NullDriftDetector()
    if key == "threshold":
        return ThresholdDriftDetector(**options)
    if key == "page-hinkley":
        return PageHinkleyDetector(**options)
    if key == "scheduled":
        return ScheduledDriftDetector(**options)
    raise KeyError(
        f"unknown drift detector {name!r}; "
        f"expected one of {', '.join(DRIFT_DETECTOR_NAMES)}"
    )

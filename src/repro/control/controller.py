"""Closed-loop reconfiguration: drift → re-tune → rollout, inside a run.

The offline search layer answers "which configuration is cheapest under the
SLO for *this* traffic?"; the serving layer answers "does that configuration
hold up under load?".  The :class:`ReconfigurationController` closes the
loop between them at runtime: it watches the live request stream through a
:class:`~repro.control.monitor.SlidingWindowMonitor`, lets a pluggable
:class:`~repro.control.drift.DriftDetector` decide when the traffic no
longer matches what the active configuration was tuned for, re-runs the
optimizer against the *observed* traffic profile (a
:class:`MixtureObjective` over the window's input-scale mix, served by the
vectorized backend and warm-started from a live GP surrogate via the
incremental :meth:`~repro.optimizers.gp.GaussianProcessRegressor.update`),
and hands the candidate to a pluggable
:class:`~repro.control.rollout.RolloutPolicy` (immediate, canary-fraction
with automatic rollback on SLO regression, or drain-and-switch).

Everything is deterministic: the controller runs inline within the serving
simulator's existing arrival/completion events (it schedules nothing of its
own), re-tune seeds derive from the controller seed and the re-tune index,
and canary routing is credit-counter based.  A controller whose detector
never fires leaves the run byte-identical to a static one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.control.drift import DriftDetector
from repro.control.monitor import CompletionRecord, SlidingWindowMonitor, WindowSnapshot
from repro.control.rollout import RolloutDecision, RolloutPolicy
from repro.core.aarc import AARC, AARCOptions
from repro.core.config_space import ConfigurationSpace
from repro.core.objective import EvaluationResult, WorkflowObjective
from repro.core.scheduler import SchedulerOptions
from repro.execution.backend import EvaluationBackend
from repro.execution.events import RequestArrival
from repro.execution.serving import ServedRequest
from repro.optimizers.bayesian import (
    BayesianOptimizer,
    BayesianOptimizerOptions,
    SurrogateState,
)
from repro.utils.rng import derive_seed
from repro.workflow.dag import Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = [
    "ControllerOptions",
    "ControlEvent",
    "ConfigVersionInfo",
    "ControlSummary",
    "MixtureObjective",
    "ReconfigurationController",
]


@dataclass(frozen=True)
class ControllerOptions:
    """Tunables of the reconfiguration controller.

    Attributes
    ----------
    window_seconds:
        Monitor window the drift detectors observe.
    min_window_completions:
        Completions the window must hold before drift is checked at all
        (early-run statistics are too thin to act on).
    min_retune_interval_seconds:
        Cooldown between consecutive re-tunes (measured from the previous
        re-tune or rollout resolution).
    check_interval_seconds:
        Minimum event-loop time between drift *checks* (each check builds a
        full window snapshot, which sorts and re-aggregates the window —
        wasteful per completion at high rates).  ``None`` derives
        ``window_seconds / 20``; ``0`` checks on every completion.
    retune_method:
        ``"AARC"`` (the default) re-tunes with the paper's trace-guided
        scheduler/configurator, which converges on its own in tens of
        samples; ``"BO"`` re-tunes with Bayesian optimisation warm-started
        from the live GP surrogate.  The repo's own Fig. 3 reproduction
        shows why AARC is the default: decoupled-space BO fluctuates and
        needs hundreds of samples, which an online re-tune does not have.
    retune_samples:
        Evaluation budget of each ``"BO"`` re-tune (AARC terminates on its
        own and ignores this).
    warm_start:
        Keep one live GP surrogate across ``"BO"`` re-tunes (incremental
        Cholesky updates) instead of refitting from scratch each time.
    queueing_headroom:
        Tighten the re-tune SLO by the observed mean queueing delay, so the
        optimizer leaves room for contention: a config whose *service* time
        fits ``limit - queueing`` still meets the end-to-end SLO under the
        observed load.
    min_slo_fraction:
        Tightening is applied only while the resulting fraction stays at or
        above this floor.  Deeper overload (queueing eating more of the
        budget than that) means no uncontended-latency target is attainable
        anyway — the re-tune then optimises at the full SLO, where
        minimising cost maximises work-efficiency and therefore serving
        capacity, which is what actually drains the queue.
    attainment_target:
        Fraction of the observed input mix (by weight) that must meet the
        SLO for a candidate to count as feasible (1.0 = every observed
        class).
    max_retunes:
        Optional hard cap on re-tunes per run.
    """

    window_seconds: float = 60.0
    min_window_completions: int = 8
    min_retune_interval_seconds: float = 30.0
    check_interval_seconds: Optional[float] = None
    retune_method: str = "AARC"
    retune_samples: int = 16
    warm_start: bool = True
    queueing_headroom: bool = True
    min_slo_fraction: float = 0.5
    attainment_target: float = 1.0
    max_retunes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.min_window_completions < 1:
            raise ValueError("min_window_completions must be at least 1")
        if self.min_retune_interval_seconds < 0:
            raise ValueError("min_retune_interval_seconds must be non-negative")
        if self.check_interval_seconds is not None and self.check_interval_seconds < 0:
            raise ValueError("check_interval_seconds must be non-negative")
        if self.retune_method.strip().upper() not in {"AARC", "BO"}:
            raise ValueError("retune_method must be 'AARC' or 'BO'")
        if self.retune_samples < 2:
            raise ValueError("retune_samples must be at least 2")
        if not 0 < self.min_slo_fraction <= 1:
            raise ValueError("min_slo_fraction must be in (0, 1]")
        if not 0 < self.attainment_target <= 1:
            raise ValueError("attainment_target must be in (0, 1]")


@dataclass(frozen=True)
class ControlEvent:
    """One entry of the controller's timeline."""

    time: float
    kind: str  # drift | retune | retune-failed | retune-noop | promote | rollback
    detail: str
    version: Optional[int] = None


@dataclass
class ConfigVersionInfo:
    """One configuration version the controller created or inherited."""

    version: int
    configuration: WorkflowConfiguration
    created_at: float
    reason: str
    rejected: bool = False


@dataclass
class ControlSummary:
    """Everything one adaptive run's control loop did, for reporting."""

    detector: str
    rollout: str
    events: List[ControlEvent]
    versions: List[ConfigVersionInfo]
    final_version: int
    retunes: int
    promotions: int
    rollbacks: int
    failed_retunes: int
    retune_samples_total: int
    version_completions: Dict[int, int] = field(default_factory=dict)
    transition_unresolved: bool = False

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.retunes} re-tunes ({self.promotions} promoted, "
            f"{self.rollbacks} rolled back, {self.failed_retunes} infeasible) "
            f"via {self.detector} / {self.rollout}, "
            f"{self.retune_samples_total} re-tune samples, "
            f"final version v{self.final_version}"
        )


class MixtureObjective(WorkflowObjective):
    """Objective over an *observed* input-scale mixture.

    A re-tune must optimise for the traffic actually being served, not the
    paper's standard input: each candidate configuration is evaluated at
    every observed class scale (``evaluate_batch`` submits one whole batch
    per scale, so a vectorized backend serves each scale in a single array
    pass) and the results are combined by the observed weights — cost is the
    expected cost per request under the mix, runtime the weighted mean
    latency, and feasibility requires classes covering at least
    ``attainment_target`` of the weight to *succeed and* meet the SLO
    individually.  An ``attainment_target`` below 1.0 deliberately lets the
    optimiser sacrifice a vanishing tail of the mix (e.g. the last few
    heavy requests of a phase that is draining away) in exchange for a
    configuration matched to the dominant traffic.

    The recorded trace is the dominant (highest-weight, heaviest on ties)
    component's trace, so trace-guided searchers see the mixture's most
    representative execution.
    """

    def __init__(
        self,
        workflow: Workflow,
        slo: SLO,
        mixture: Sequence[Tuple[float, float]],
        backend: EvaluationBackend,
        max_samples: Optional[int] = None,
        attainment_target: float = 1.0,
    ) -> None:
        super().__init__(
            workflow=workflow, slo=slo, backend=backend, max_samples=max_samples
        )
        components = [(float(scale), float(weight)) for scale, weight in mixture]
        if not components or any(s <= 0 or w < 0 for s, w in components):
            raise ValueError("mixture needs positive scales and non-negative weights")
        total = sum(weight for _, weight in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.mixture = sorted((s, w / total) for s, w in components if w > 0)
        if not 0 < attainment_target <= 1:
            raise ValueError("attainment_target must be in (0, 1]")
        self.attainment_target = float(attainment_target)
        # Dominant component: highest weight, heaviest scale on ties.
        self._dominant = max(range(len(self.mixture)),
                             key=lambda i: (self.mixture[i][1], self.mixture[i][0]))

    def _combine(self, configuration: WorkflowConfiguration, traces) -> EvaluationResult:
        runtime = 0.0
        cost = 0.0
        met_weight = 0.0
        success_weight = 0.0
        for (scale, weight), trace in zip(self.mixture, traces):
            runtime += weight * trace.end_to_end_latency
            cost += weight * trace.total_cost
            if trace.succeeded:
                success_weight += weight
                if self.slo.is_met(trace.end_to_end_latency):
                    met_weight += weight
        target = self.attainment_target - 1e-12
        return EvaluationResult(
            configuration=configuration,
            runtime_seconds=runtime,
            cost=cost,
            slo_met=met_weight >= target,
            succeeded=success_weight >= target,
            trace=traces[self._dominant],
        )

    def evaluate(
        self, configuration: WorkflowConfiguration, phase: str = "retune"
    ) -> EvaluationResult:
        self._check_budget(1)
        traces = [
            self.backend.evaluate(self.workflow, configuration, input_scale=scale)
            for scale, _ in self.mixture
        ]
        result = self._combine(configuration, traces)
        self.history.record(result, phase=phase)
        return result

    def evaluate_batch(
        self, configurations: Sequence[WorkflowConfiguration], phase: str = "retune"
    ) -> List[EvaluationResult]:
        configurations = list(configurations)
        if not configurations:
            return []
        self._check_budget(len(configurations))
        per_scale = [
            self.backend.evaluate_batch(
                self.workflow, configurations, input_scale=scale
            )
            for scale, _ in self.mixture
        ]
        results: List[EvaluationResult] = []
        for column, configuration in enumerate(configurations):
            traces = [per_scale[row][column] for row in range(len(self.mixture))]
            result = self._combine(configuration, traces)
            self.history.record(result, phase=phase)
            results.append(result)
        return results


class ReconfigurationController:
    """Online drift-aware reconfiguration wired into the serving simulator.

    Pass an instance as ``controller=`` to
    :meth:`~repro.execution.serving.ServingSimulator.run`.  The simulator
    calls :meth:`bind` once at run start, :meth:`observe_arrival` +
    :meth:`assign` per arrival, and :meth:`observe_completion` per
    completion; everything else (drift checks, re-tune searches, rollout
    stepping, warm-pool retargeting) happens inside those calls.

    Parameters
    ----------
    workflow / slo:
        What is being served and against which latency objective.
    initial_configuration:
        Version 0 — the offline-tuned configuration the run starts with.
    detector:
        Drift detector deciding *when* to re-tune.
    rollout:
        Rollout policy deciding *how* a candidate reaches traffic.
    backend:
        Evaluation substrate for re-tune sweeps (typically a
        ``CachingBackend(VectorizedBackend(...))`` stack; when the backend
        supports :meth:`~repro.execution.backend.CachingBackend.set_context`,
        each re-tune keys its entries on the observed phase signature so
        cross-phase entries are never read).
    options:
        Controller tunables.
    seed:
        Root seed for re-tune searches (re-tune ``k`` derives its own seed).
    config_space:
        Search space of re-tunes; defaults to the standard space.
    base_config:
        Over-provisioned per-function starting point for AARC re-tunes;
        defaults to the top of the configuration grid.
    """

    def __init__(
        self,
        workflow: Workflow,
        slo: SLO,
        initial_configuration: WorkflowConfiguration,
        detector: DriftDetector,
        rollout: RolloutPolicy,
        backend: EvaluationBackend,
        options: Optional[ControllerOptions] = None,
        seed: int = 2025,
        config_space: Optional[ConfigurationSpace] = None,
        base_config: Optional[ResourceConfig] = None,
        name: str = "",
    ) -> None:
        # Fleet serving runs one controller per tenant, often against one
        # shared memoizing backend; the name namespaces cache contexts (and
        # labels reports) so tenants never read back each other's entries.
        self.name = str(name)
        self.workflow = workflow
        self.slo = slo
        self.detector = detector
        self.rollout = rollout
        self.backend = backend
        self.options = options if options is not None else ControllerOptions()
        self.seed = int(seed)
        self.config_space = (
            config_space if config_space is not None else ConfigurationSpace()
        )
        self.base_config = (
            base_config if base_config is not None else self.config_space.max_config()
        )
        self.rollout.bind(slo)
        self.monitor = SlidingWindowMonitor(self.options.window_seconds, slo=slo)
        self.surrogate = SurrogateState()
        self.versions: List[ConfigVersionInfo] = [
            ConfigVersionInfo(0, initial_configuration, 0.0, "initial")
        ]
        self.timeline: List[ControlEvent] = []
        self.retunes = 0
        self.promotions = 0
        self.rollbacks = 0
        self.failed_retunes = 0
        self.retune_samples_total = 0
        self._active_version = 0
        self._transition: Optional[Tuple[int, int]] = None
        self._assigned: Dict[int, int] = {}
        self._inflight: Set[int] = set()
        self._version_completions: Dict[int, int] = {}
        self._last_retune_time = -math.inf
        self._last_check_time = -math.inf
        self._check_interval = (
            self.options.check_interval_seconds
            if self.options.check_interval_seconds is not None
            else self.options.window_seconds / 20.0
        )
        self._pool = None

    # -- wiring (called by the serving simulator) ---------------------------------
    def bind(self, pool=None) -> None:
        """Attach the run's shared warm pool (retargeted on rollouts)."""
        self._pool = pool

    @property
    def active_version(self) -> int:
        """The configuration version non-canary arrivals are assigned."""
        return self._active_version

    @property
    def active_configuration(self) -> WorkflowConfiguration:
        """The configuration of the active version."""
        return self.versions[self._active_version].configuration

    @property
    def in_transition(self) -> bool:
        """Whether a rollout is currently in progress."""
        return self._transition is not None

    def version_of(self, index: int) -> int:
        """The configuration version request ``index`` was assigned."""
        return self._assigned.get(index, 0)

    def assign(self, index: int, request: RequestArrival) -> WorkflowConfiguration:
        """Choose the configuration (and version) for one arriving request."""
        if self._transition is not None:
            version = self.rollout.assign_version(index)
        else:
            version = self._active_version
        self._assigned[index] = version
        self._inflight.add(index)
        return self.versions[version].configuration

    def observe_arrival(self, now: float, request: RequestArrival) -> None:
        """Feed one arrival into the monitor."""
        self.monitor.observe_arrival(now, request)

    def observe_rejection(self, now: float, index: int) -> None:
        """A previously assigned request was rejected (it never completes).

        The index leaves the in-flight set, and an active rollout gets to
        re-evaluate — a ``drain`` waiting on the rejected request would
        otherwise never resolve.
        """
        self._inflight.discard(index)
        if self._transition is not None:
            decision = self.rollout.on_rejection(now, index, self.version_of(index))
            if decision is RolloutDecision.PROMOTE:
                self._promote(now)
            elif decision is RolloutDecision.ROLLBACK:
                # e.g. a canary whose cohort keeps being rejected outright.
                self._rollback(now)

    def observe_protection(self, now: float, kind: str, detail: str) -> None:
        """Record one protection-layer decision on the control timeline.

        The serving layer's :class:`~repro.execution.protection.ProtectionGuard`
        reports breaker transitions and shed-level changes here, so an
        adaptive run's timeline interleaves *defensive* state changes with
        the controller's own drift/re-tune/rollout events — an operator
        reading the summary sees both control planes in one place.
        """
        self.timeline.append(ControlEvent(now, f"protection-{kind}", detail))

    def observe_completion(self, now: float, outcome: ServedRequest) -> None:
        """Feed one completion; may step a rollout or trigger a re-tune."""
        record = CompletionRecord.from_outcome(outcome)
        self._inflight.discard(record.index)
        self._version_completions[record.config_version] = (
            self._version_completions.get(record.config_version, 0) + 1
        )
        self.monitor.observe_completion(now, record)
        if self._transition is not None:
            decision = self.rollout.on_completion(now, record)
            if decision is RolloutDecision.PROMOTE:
                self._promote(now)
            elif decision is RolloutDecision.ROLLBACK:
                self._rollback(now)
            return
        if self.monitor.completion_count < self.options.min_window_completions:
            return
        if now - self._last_retune_time < self.options.min_retune_interval_seconds:
            return
        if (
            self.options.max_retunes is not None
            and self.retunes >= self.options.max_retunes
        ):
            return
        if not self.detector.requires_snapshot:
            # e.g. NullDriftDetector: don't pay the full-window aggregation
            # on every completion for a detector that reads nothing.
            return
        if now - self._last_check_time < self._check_interval:
            # Each check costs a full window aggregation; at high completion
            # rates checking every completion would dominate the hot path.
            return
        self._last_check_time = now
        snapshot = self.monitor.snapshot(now)
        reason = self.detector.observe(snapshot)
        if reason is not None:
            self._retune(now, snapshot, reason)

    # -- the re-tune loop ---------------------------------------------------------
    def _retune(self, now: float, snapshot: WindowSnapshot, reason: str) -> None:
        self.timeline.append(ControlEvent(now, "drift", reason))
        self._last_retune_time = now
        self.retunes += 1
        objective = self._build_objective(snapshot)
        # The incumbent is measured under the *same* observed objective
        # first: a candidate only rolls out if it strictly improves on the
        # traffic actually being served (never "re-tune for the sake of it").
        incumbent = objective.evaluate(
            self.active_configuration, phase="retune-incumbent"
        )
        if self.options.retune_method.strip().upper() == "AARC":
            searcher = AARC(
                config_space=self.config_space,
                options=AARCOptions(
                    scheduler=SchedulerOptions(base_config=self.base_config)
                ),
            )
            result = searcher.search(objective)
        else:
            searcher = BayesianOptimizer(
                config_space=self.config_space,
                options=BayesianOptimizerOptions(
                    max_samples=self.options.retune_samples,
                    n_initial_samples=max(
                        1, min(4, self.options.retune_samples - 1)
                    ),
                    seed=derive_seed(self.seed, "retune", self.retunes),
                ),
            )
            state = self.surrogate if self.options.warm_start else None
            result = searcher.search(objective, state=state)
        self.retune_samples_total += objective.sample_count
        if not result.found_feasible and not incumbent.feasible:
            self.failed_retunes += 1
            self.timeline.append(
                ControlEvent(
                    now,
                    "retune-failed",
                    f"no feasible configuration in {objective.sample_count} samples",
                )
            )
            self.detector.rebaseline(snapshot)
            return
        improves = result.found_feasible and (
            not incumbent.feasible or result.best_cost < incumbent.cost
        )
        if not improves:
            self.timeline.append(
                ControlEvent(
                    now,
                    "retune-noop",
                    "re-tune found nothing better than the active config "
                    f"(incumbent cost {incumbent.cost:.2f} on the observed mix)",
                )
            )
            self.detector.rebaseline(snapshot)
            return
        candidate = result.best_configuration
        if candidate == self.active_configuration:
            self.timeline.append(
                ControlEvent(now, "retune-noop", "re-tune confirmed the active config")
            )
            self.detector.rebaseline(snapshot)
            return
        version = len(self.versions)
        self.versions.append(
            ConfigVersionInfo(version, candidate, now, reason)
        )
        self.timeline.append(
            ControlEvent(
                now,
                "retune",
                f"candidate v{version}: cost {result.best_cost:.2f}, "
                f"runtime {result.best_runtime_seconds:.2f}s "
                f"({result.sample_count} samples)",
                version=version,
            )
        )
        self._transition = (self._active_version, version)
        decision = self.rollout.begin(
            now,
            self._active_version,
            version,
            snapshot,
            frozenset(self._inflight),
        )
        if decision is RolloutDecision.PROMOTE:
            self._promote(now)
        elif decision is RolloutDecision.ROLLBACK:  # pragma: no cover - defensive
            self._rollback(now)

    def _build_objective(self, snapshot: WindowSnapshot) -> MixtureObjective:
        slo = self.slo
        if self.options.queueing_headroom and snapshot.queueing_mean_seconds > 0:
            # Leave head-room for the observed contention: a service time of
            # (limit - mean queueing) still meets the SLO end to end.  Under
            # deep overload (fraction below the floor) no service-time target
            # is attainable, so keep the full SLO and let cost minimisation
            # maximise capacity instead.
            fraction = (
                self.slo.latency_limit - snapshot.queueing_mean_seconds
            ) / self.slo.latency_limit
            if self.options.min_slo_fraction <= fraction < 1.0:
                slo = self.slo.scaled(fraction)
        set_context = getattr(self.backend, "set_context", None)
        if callable(set_context):
            # Key this re-tune's cached evaluations on the observed phase so
            # entries from other phases are never read back.
            signature = snapshot.signature()
            if self.name:
                signature = f"{self.name}|{signature}"
            set_context(signature)
        bo = self.options.retune_method.strip().upper() == "BO"
        return MixtureObjective(
            workflow=self.workflow,
            slo=slo,
            mixture=snapshot.mixture(),
            backend=self.backend,
            # AARC terminates on its own; BO consumes exactly the budget
            # (the incumbent evaluation is charged against it).
            max_samples=self.options.retune_samples if bo else None,
            attainment_target=self.options.attainment_target,
        )

    def _promote(self, now: float) -> None:
        assert self._transition is not None
        _, new_version = self._transition
        self._transition = None
        self._active_version = new_version
        self.promotions += 1
        evicted = (
            self._pool.retarget(self.active_configuration)
            if self._pool is not None
            else 0
        )
        self.timeline.append(
            ControlEvent(
                now,
                "promote",
                f"v{new_version} active ({evicted} stale warm containers evicted)",
                version=new_version,
            )
        )
        self._last_retune_time = now
        self.detector.rebaseline(self.monitor.snapshot(now))

    def _rollback(self, now: float) -> None:
        assert self._transition is not None
        old_version, new_version = self._transition
        self._transition = None
        # The active version never moved during a canary; restore semantics
        # are "the exact prior configuration object keeps serving".
        self._active_version = old_version
        self.versions[new_version].rejected = True
        self.rollbacks += 1
        evicted = (
            self._pool.retarget(self.active_configuration)
            if self._pool is not None
            else 0
        )
        self.timeline.append(
            ControlEvent(
                now,
                "rollback",
                f"v{new_version} regressed; v{old_version} restored "
                f"({evicted} canary warm containers evicted)",
                version=new_version,
            )
        )
        self._last_retune_time = now
        self.detector.rebaseline(self.monitor.snapshot(now))

    # -- reporting ---------------------------------------------------------------
    def summary(self) -> ControlSummary:
        """Package the run's control activity for reports and goldens."""
        return ControlSummary(
            detector=self.detector.describe(),
            rollout=self.rollout.describe(),
            events=list(self.timeline),
            versions=list(self.versions),
            final_version=self._active_version,
            retunes=self.retunes,
            promotions=self.promotions,
            rollbacks=self.rollbacks,
            failed_retunes=self.failed_retunes,
            retune_samples_total=self.retune_samples_total,
            version_completions=dict(sorted(self._version_completions.items())),
            transition_unresolved=self._transition is not None,
        )

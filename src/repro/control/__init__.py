"""Online adaptive reconfiguration: monitoring, drift detection, control.

This package turns the offline configuration search into a *runtime*
component.  A :class:`~repro.control.monitor.SlidingWindowMonitor` estimates
the live traffic (arrival rate, input mix, latency tail, SLO attainment), a
pluggable :class:`~repro.control.drift.DriftDetector` decides when the
traffic has drifted away from what the active configuration was tuned for,
and the :class:`~repro.control.controller.ReconfigurationController`
re-runs the optimizer against the observed traffic profile and rolls the
winner out through a :class:`~repro.control.rollout.RolloutPolicy`
(immediate, canary with automatic rollback, or drain-and-switch) — all
seed-deterministic on the serving simulator's event loop.
"""

from repro.control.monitor import (
    CompletionRecord,
    SlidingWindowMonitor,
    WindowSnapshot,
)
from repro.control.drift import (
    DRIFT_DETECTOR_NAMES,
    DriftDetector,
    NullDriftDetector,
    PageHinkleyDetector,
    ScheduledDriftDetector,
    ThresholdDriftDetector,
    build_drift_detector,
)
from repro.control.rollout import (
    ROLLOUT_POLICY_NAMES,
    CanaryRollout,
    DrainAndSwitchRollout,
    ImmediateRollout,
    RolloutDecision,
    RolloutPolicy,
    build_rollout_policy,
)
from repro.control.controller import (
    ConfigVersionInfo,
    ControlEvent,
    ControlSummary,
    ControllerOptions,
    MixtureObjective,
    ReconfigurationController,
)

__all__ = [
    "CompletionRecord",
    "SlidingWindowMonitor",
    "WindowSnapshot",
    "DRIFT_DETECTOR_NAMES",
    "DriftDetector",
    "NullDriftDetector",
    "ThresholdDriftDetector",
    "PageHinkleyDetector",
    "ScheduledDriftDetector",
    "build_drift_detector",
    "ROLLOUT_POLICY_NAMES",
    "RolloutDecision",
    "RolloutPolicy",
    "ImmediateRollout",
    "CanaryRollout",
    "DrainAndSwitchRollout",
    "build_rollout_policy",
    "ControllerOptions",
    "ControlEvent",
    "ConfigVersionInfo",
    "ControlSummary",
    "MixtureObjective",
    "ReconfigurationController",
]

"""Sliding-window estimators over the live request stream.

The closed control loop needs to know what the traffic *currently* looks
like — arrival rate, input-class mix, latency tail, SLO attainment, cost per
request — without replaying the whole run.  The
:class:`SlidingWindowMonitor` keeps deterministic sliding windows on the
event-loop clock: arrivals and completions are recorded as they happen,
entries older than the window are evicted by timestamp comparison alone, and
every statistic in a :class:`WindowSnapshot` is computed over records sorted
by a unique key (the request index for completions, ``(time, class, scale)``
for arrivals).  Sorting before aggregating makes the snapshot independent of
the order in which same-timestamp events were processed — the event loop's
insertion-order tie-break never leaks into the statistics the drift
detectors observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.execution.events import RequestArrival
from repro.execution.serving import ServedRequest, percentile
from repro.workflow.slo import SLO

__all__ = ["CompletionRecord", "WindowSnapshot", "SlidingWindowMonitor"]


@dataclass(frozen=True)
class CompletionRecord:
    """One completed request as the monitor sees it."""

    index: int
    completion_time: float
    latency_seconds: float
    queueing_seconds: float
    cost: float
    input_class: str
    input_scale: float
    succeeded: bool
    config_version: int

    @classmethod
    def from_outcome(cls, outcome: ServedRequest) -> "CompletionRecord":
        """Flatten a serving outcome into a monitor record."""
        return cls(
            index=outcome.index,
            completion_time=outcome.completion_time,
            latency_seconds=outcome.latency_seconds,
            queueing_seconds=outcome.queueing_delay,
            cost=outcome.cost,
            input_class=outcome.request.input_class,
            input_scale=outcome.request.input_scale,
            succeeded=outcome.succeeded,
            config_version=outcome.config_version,
        )


@dataclass(frozen=True)
class WindowSnapshot:
    """Deterministic summary of the monitor's current window.

    All mappings are stored as name-sorted tuples so snapshots are hashable,
    comparable and (for the cache-context signature) canonical.
    """

    time: float
    window_seconds: float
    arrival_count: int
    arrival_rate_rps: float
    completion_count: int
    latency_mean_seconds: float
    latency_p95_seconds: float
    latency_p99_seconds: float
    queueing_mean_seconds: float
    mean_cost: float
    slo_attainment: Optional[float]
    mean_input_scale: float
    #: Arrival-side input-class mix (name → weight), name-sorted.
    class_mix: Tuple[Tuple[str, float], ...]
    #: Mean observed input scale per class (name-sorted).
    class_scales: Tuple[Tuple[str, float], ...]
    #: Completions per configuration version (version-sorted).
    version_counts: Tuple[Tuple[int, int], ...]

    def mixture(self) -> List[Tuple[float, float]]:
        """The observed ``(input_scale, weight)`` mixture, scale-sorted.

        This is the traffic profile a re-tune optimises against: each
        arrival-side class weight paired with the class's mean observed
        scale.  Falls back to a single unit-scale component when the window
        holds no arrivals yet.
        """
        scales = dict(self.class_scales)
        components = [
            (scales.get(name, 1.0), weight)
            for name, weight in self.class_mix
            if weight > 0.0
        ]
        if not components:
            return [(self.mean_input_scale if self.mean_input_scale > 0 else 1.0, 1.0)]
        merged: Dict[float, float] = {}
        for scale, weight in components:
            merged[scale] = merged.get(scale, 0.0) + weight
        return sorted(merged.items())

    def signature(self, precision: int = 6) -> Tuple:
        """Canonical hashable tag of the observed traffic phase.

        Used as the :class:`~repro.execution.backend.CachingBackend` context
        during re-tunes, so evaluations aggregated under one phase's mix are
        never replayed for a phase with a different mix.
        """
        return (
            "phase",
            tuple(
                (name, round(weight, precision)) for name, weight in self.class_mix
            ),
            tuple(
                (name, round(scale, precision)) for name, scale in self.class_scales
            ),
        )


class SlidingWindowMonitor:
    """Deterministic sliding-window statistics on the event-loop clock.

    Parameters
    ----------
    window_seconds:
        Length of the trailing window both arrivals and completions are
        aggregated over.
    slo:
        Optional latency objective; when given, snapshots carry the window's
        SLO attainment.
    """

    def __init__(self, window_seconds: float = 60.0, slo: Optional[SLO] = None) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = float(window_seconds)
        self.slo = slo
        self._arrivals: Deque[Tuple[float, str, float]] = deque()
        self._completions: Deque[CompletionRecord] = deque()
        # Most recent non-empty arrival-side mix, remembered so a snapshot
        # taken during an arrival lull (backlog still completing) reports
        # the last *observed* traffic mix instead of fabricating a default.
        self._last_mix: Optional[
            Tuple[Tuple[Tuple[str, float], ...], Tuple[Tuple[str, float], ...], float]
        ] = None

    # -- observation -------------------------------------------------------------
    def observe_arrival(self, now: float, request: RequestArrival) -> None:
        """Record one arrival at event-loop time ``now``."""
        self._arrivals.append((now, request.input_class, request.input_scale))

    def observe_completion(self, now: float, record: CompletionRecord) -> None:
        """Record one completion at event-loop time ``now``."""
        self._completions.append(record)
        self._evict(now)

    def _evict(self, now: float) -> None:
        """Drop entries that fell out of the window (timestamp-only test)."""
        horizon = now - self.window_seconds
        while self._arrivals and self._arrivals[0][0] < horizon:
            self._arrivals.popleft()
        while self._completions and self._completions[0].completion_time < horizon:
            self._completions.popleft()

    # -- snapshots ---------------------------------------------------------------
    @property
    def completion_count(self) -> int:
        """Completions currently inside the window."""
        return len(self._completions)

    def snapshot(self, now: float) -> WindowSnapshot:
        """Summarise the window ending at ``now``.

        Records are sorted by a unique key before any aggregation, so the
        result does not depend on the processing order of same-timestamp
        events (floating-point sums are evaluated in one canonical order).
        When the window currently holds no arrivals, the class mix and mean
        input scale of the last arrival-carrying snapshot are reported (the
        arrival *rate* is genuinely zero); only a monitor that never saw an
        arrival falls back to the unit-scale default.
        """
        self._evict(now)
        arrivals = sorted(self._arrivals)
        completions = sorted(self._completions, key=lambda r: r.index)

        arrival_count = len(arrivals)
        # Early in a run the window is not full yet; dividing by the nominal
        # window length would underestimate the rate and manufacture a
        # spurious upward "drift" as the window fills.
        effective_window = (
            min(self.window_seconds, now) if now > 0 else self.window_seconds
        )
        rate = arrival_count / effective_window
        mix: Dict[str, int] = {}
        scale_sums: Dict[str, float] = {}
        total_scale = 0.0
        for _, name, scale in arrivals:
            mix[name] = mix.get(name, 0) + 1
            scale_sums[name] = scale_sums.get(name, 0.0) + scale
            total_scale += scale
        if arrival_count:
            class_mix = tuple(
                (name, mix[name] / arrival_count) for name in sorted(mix)
            )
            class_scales = tuple(
                (name, scale_sums[name] / mix[name]) for name in sorted(mix)
            )
            mean_scale = total_scale / arrival_count
            self._last_mix = (class_mix, class_scales, mean_scale)
        elif self._last_mix is not None:
            # Arrival lull (e.g. an overload backlog draining): keep the
            # last observed mix rather than inventing a unit-scale default
            # the detectors would mistake for input drift.
            class_mix, class_scales, mean_scale = self._last_mix
        else:
            class_mix = ()
            class_scales = ()
            mean_scale = 1.0

        latencies = [record.latency_seconds for record in completions]
        completed = len(completions)
        attainment: Optional[float] = None
        if self.slo is not None and completed:
            attainment = (
                sum(
                    1
                    for record in completions
                    if record.succeeded and self.slo.is_met(record.latency_seconds)
                )
                / completed
            )
        version_counts: Dict[int, int] = {}
        for record in completions:
            version_counts[record.config_version] = (
                version_counts.get(record.config_version, 0) + 1
            )

        return WindowSnapshot(
            time=now,
            window_seconds=self.window_seconds,
            arrival_count=arrival_count,
            arrival_rate_rps=rate,
            completion_count=completed,
            latency_mean_seconds=(
                sum(latencies) / completed if completed else float("nan")
            ),
            latency_p95_seconds=percentile(latencies, 95),
            latency_p99_seconds=percentile(latencies, 99),
            queueing_mean_seconds=(
                sum(record.queueing_seconds for record in completions) / completed
                if completed
                else 0.0
            ),
            mean_cost=(
                sum(record.cost for record in completions) / completed
                if completed
                else float("nan")
            ),
            slo_attainment=attainment,
            mean_input_scale=mean_scale,
            class_mix=class_mix,
            class_scales=class_scales,
            version_counts=tuple(sorted(version_counts.items())),
        )

"""Pluggable rollout policies: how a re-tuned configuration reaches traffic.

A re-tune produces a *candidate* configuration; the rollout policy decides
how requests migrate onto it and whether it sticks:

* ``immediate`` — every subsequent arrival is served by the new
  configuration; the switch is promoted on the spot.
* ``canary`` — a deterministic fraction of arrivals is routed to the new
  configuration while the rest stay on the old one; after a fixed number of
  canary completions their latency/SLO statistics are compared against the
  concurrent stable traffic (or, with too few stable completions, against
  the pre-rollout baseline snapshot) and the candidate is either promoted or
  rolled back.  A rollback restores the *exact* prior configuration object.
* ``drain`` — requests in flight when the rollout starts finish on the old
  configuration (arrivals keep joining it during the drain); once that
  pre-rollout work has drained, the switch is promoted atomically.

Policies are deterministic state machines: canary routing uses a
credit-counter (never randomness), so two runs of the same seed make the
same assignments.
"""

from __future__ import annotations

import abc
import enum
from typing import FrozenSet, Optional, Set, Tuple

from repro.control.monitor import CompletionRecord, WindowSnapshot
from repro.workflow.slo import SLO

__all__ = [
    "ROLLOUT_POLICY_NAMES",
    "RolloutDecision",
    "RolloutPolicy",
    "ImmediateRollout",
    "CanaryRollout",
    "DrainAndSwitchRollout",
    "build_rollout_policy",
]

#: Policy names understood by :func:`build_rollout_policy` (and the CLI).
ROLLOUT_POLICY_NAMES: Tuple[str, ...] = ("immediate", "canary", "drain")


class RolloutDecision(enum.Enum):
    """What the policy wants the controller to do next."""

    CONTINUE = "continue"
    PROMOTE = "promote"
    ROLLBACK = "rollback"


class _VersionStats:
    """Running statistics of one version's cohort during a transition.

    Completions and rejections are tracked separately: latency/attainment
    guards read completion statistics only (a rejection has no latency and
    must not dilute the mean), while the failure-rate guard folds rejections
    in on both cohorts so config-independent overload cancels out.
    """

    def __init__(self) -> None:
        self.count = 0
        self.latency_sum = 0.0
        self.cost_sum = 0.0
        self.slo_met = 0
        self.failed = 0
        self.rejected = 0

    def observe(self, record: CompletionRecord, slo: Optional[SLO]) -> None:
        self.count += 1
        self.latency_sum += record.latency_seconds
        self.cost_sum += record.cost
        if not record.succeeded:
            self.failed += 1
        elif slo is None or slo.is_met(record.latency_seconds):
            self.slo_met += 1

    def observe_rejection(self) -> None:
        self.rejected += 1

    @property
    def observations(self) -> int:
        """Completions plus rejections — everything the cohort absorbed."""
        return self.count + self.rejected

    @property
    def failure_rate(self) -> float:
        """Share of the cohort that failed terminally or was rejected."""
        if not self.observations:
            return 0.0
        return (self.failed + self.rejected) / self.observations

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.count if self.count else float("nan")

    @property
    def attainment(self) -> float:
        return self.slo_met / self.count if self.count else float("nan")


class RolloutPolicy(abc.ABC):
    """Drives one old-version → new-version transition at a time."""

    #: Short name used in reports and factory lookups.
    name: str = "rollout"

    def __init__(self) -> None:
        self.slo: Optional[SLO] = None
        self._old_version = 0
        self._new_version = 0

    def bind(self, slo: Optional[SLO]) -> None:
        """Give the policy the latency objective its guards compare against."""
        self.slo = slo

    def begin(
        self,
        now: float,
        old_version: int,
        new_version: int,
        baseline: WindowSnapshot,
        inflight: FrozenSet[int],
    ) -> RolloutDecision:
        """Start a transition; may decide instantly (e.g. ``immediate``).

        Parameters
        ----------
        now:
            Event-loop time the rollout starts at.
        old_version / new_version:
            Configuration versions being transitioned between.
        baseline:
            Monitor snapshot captured just before the rollout (fallback
            reference when concurrent stable traffic is too thin).
        inflight:
            Indices of requests admitted before the rollout that have not
            completed yet (the ``drain`` policy waits for them).
        """
        self._old_version = old_version
        self._new_version = new_version
        return RolloutDecision.CONTINUE

    @abc.abstractmethod
    def assign_version(self, index: int) -> int:
        """Which configuration version the arriving request ``index`` gets."""

    @abc.abstractmethod
    def on_completion(self, now: float, record: CompletionRecord) -> RolloutDecision:
        """Feed one completion observed *during* the transition."""

    def on_rejection(self, now: float, index: int, version: int) -> RolloutDecision:
        """A request assigned during (or before) the transition was rejected.

        Rejected requests never complete, so policies waiting on specific
        requests (``drain``) or counting a cohort's completions (``canary``)
        must hear about them or they could wait forever.  ``version`` is the
        configuration version the request had been assigned.
        """
        return RolloutDecision.CONTINUE

    def describe(self) -> str:
        """Human-readable one-liner."""
        return self.name


class ImmediateRollout(RolloutPolicy):
    """Switch every subsequent arrival to the new configuration at once."""

    name = "immediate"

    def begin(self, now, old_version, new_version, baseline, inflight):
        super().begin(now, old_version, new_version, baseline, inflight)
        return RolloutDecision.PROMOTE

    def assign_version(self, index: int) -> int:  # pragma: no cover - no transition
        return self._new_version

    def on_completion(self, now, record):  # pragma: no cover - no transition
        return RolloutDecision.CONTINUE


class CanaryRollout(RolloutPolicy):
    """Route a deterministic fraction of arrivals to the candidate config.

    Parameters
    ----------
    fraction:
        Target share of arrivals routed to the canary during the transition.
        Routing uses a credit counter — the canary gets request ``n`` exactly
        when doing so keeps its share at or below ``fraction`` — so the split
        is deterministic and within one request of the target at all times.
    evaluation_requests:
        Canary completions to collect before deciding.
    latency_tolerance:
        Optional *additional* guard: allowed relative mean-latency
        regression of the canary over the reference before rollback.
        Disabled by default — a re-tuned configuration is usually cheaper
        *because* it is slower while still inside the SLO, which is exactly
        what the attainment guard permits and a mean-latency guard would
        veto.  Enable it for latency-sensitive rollouts.
    attainment_tolerance:
        Allowed absolute SLO-attainment drop before rollback.
    min_stable:
        Minimum concurrent stable completions required to use them as the
        reference; below it the pre-rollout baseline snapshot is used.
    """

    name = "canary"

    def __init__(
        self,
        fraction: float = 0.25,
        evaluation_requests: int = 12,
        latency_tolerance: Optional[float] = None,
        attainment_tolerance: float = 0.05,
        min_stable: int = 4,
    ) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if evaluation_requests < 1:
            raise ValueError("evaluation_requests must be at least 1")
        if latency_tolerance is not None and latency_tolerance < 0:
            raise ValueError("latency_tolerance must be non-negative")
        if attainment_tolerance < 0:
            raise ValueError("tolerances must be non-negative")
        if min_stable < 1:
            raise ValueError("min_stable must be at least 1")
        self.fraction = float(fraction)
        self.evaluation_requests = int(evaluation_requests)
        self.latency_tolerance = (
            float(latency_tolerance) if latency_tolerance is not None else None
        )
        self.attainment_tolerance = float(attainment_tolerance)
        self.min_stable = int(min_stable)
        self._reset()

    def _reset(self) -> None:
        self._assigned_total = 0
        self._assigned_canary = 0
        self._canary = _VersionStats()
        self._stable = _VersionStats()
        self._baseline: Optional[WindowSnapshot] = None

    def begin(self, now, old_version, new_version, baseline, inflight):
        super().begin(now, old_version, new_version, baseline, inflight)
        self._reset()
        self._baseline = baseline
        return RolloutDecision.CONTINUE

    # -- routing -----------------------------------------------------------------
    def assign_version(self, index: int) -> int:
        self._assigned_total += 1
        if self._assigned_canary + 1 <= self.fraction * self._assigned_total:
            self._assigned_canary += 1
            return self._new_version
        return self._old_version

    @property
    def assigned_counts(self) -> Tuple[int, int]:
        """``(canary, stable)`` arrivals routed so far in this transition."""
        return self._assigned_canary, self._assigned_total - self._assigned_canary

    # -- evaluation --------------------------------------------------------------
    def on_completion(self, now: float, record: CompletionRecord) -> RolloutDecision:
        if record.config_version == self._new_version:
            self._canary.observe(record, self.slo)
        else:
            self._stable.observe(record, self.slo)
        if self._canary.observations < self.evaluation_requests:
            return RolloutDecision.CONTINUE
        return self._decide()

    def on_rejection(self, now: float, index: int, version: int) -> RolloutDecision:
        # Rejections are tracked on *both* cohorts: a rejected canary is
        # regression evidence (an unservable candidate resolves — in a
        # rollback — even though its cohort never completes anything), but
        # stable rejections must weigh in too, or config-independent
        # overload rejections would veto every candidate.
        if version == self._new_version:
            self._canary.observe_rejection()
            if self._canary.observations >= self.evaluation_requests:
                return self._decide()
        else:
            self._stable.observe_rejection()
        return RolloutDecision.CONTINUE

    def _decide(self) -> RolloutDecision:
        if self._canary.count == 0:
            # Every canary observation was a rejection: no evidence the
            # candidate can serve at all — keep the incumbent.
            return RolloutDecision.ROLLBACK
        # Failures veto the candidate only when the canary cohort fails or
        # is rejected *more* than the stable one: config-independent faults
        # and overload hit both cohorts alike and must not block every
        # promotion, while a genuinely unservable candidate (stable clean,
        # canary failing) still rolls back on its first evaluation.
        reference_failure_rate = (
            self._stable.failure_rate
            if self._stable.observations >= self.min_stable
            else 0.0
        )
        if (
            self._canary.failure_rate
            > reference_failure_rate + self.attainment_tolerance
        ):
            return RolloutDecision.ROLLBACK
        if self._stable.count >= self.min_stable:
            ref_latency = self._stable.mean_latency
            ref_attainment: Optional[float] = self._stable.attainment
        elif self._baseline is not None and self._baseline.completion_count:
            ref_latency = self._baseline.latency_mean_seconds
            ref_attainment = self._baseline.slo_attainment
        else:
            # Nothing to compare against: accept the candidate.
            return RolloutDecision.PROMOTE
        if (
            self.latency_tolerance is not None
            and ref_latency == ref_latency  # not NaN
            and self._canary.mean_latency
            > ref_latency * (1.0 + self.latency_tolerance)
        ):
            return RolloutDecision.ROLLBACK
        if (
            ref_attainment is not None
            and ref_attainment == ref_attainment
            and self._canary.attainment < ref_attainment - self.attainment_tolerance
        ):
            return RolloutDecision.ROLLBACK
        return RolloutDecision.PROMOTE

    def describe(self) -> str:
        return (
            f"canary({self.fraction * 100:.0f}% for "
            f"{self.evaluation_requests} requests)"
        )


class DrainAndSwitchRollout(RolloutPolicy):
    """Let pre-rollout work finish on the old config, then cut over."""

    name = "drain"

    def __init__(self) -> None:
        super().__init__()
        self._draining: Set[int] = set()

    def begin(self, now, old_version, new_version, baseline, inflight):
        super().begin(now, old_version, new_version, baseline, inflight)
        self._draining = set(inflight)
        if not self._draining:
            return RolloutDecision.PROMOTE
        return RolloutDecision.CONTINUE

    def assign_version(self, index: int) -> int:
        # Arrivals during the drain join the old configuration; the switch
        # is atomic once the pre-rollout work has finished.
        return self._old_version

    def on_completion(self, now: float, record: CompletionRecord) -> RolloutDecision:
        self._draining.discard(record.index)
        if not self._draining:
            return RolloutDecision.PROMOTE
        return RolloutDecision.CONTINUE

    def on_rejection(self, now: float, index: int, version: int) -> RolloutDecision:
        # A rejected request will never complete; without this the drain
        # would wait on it forever.
        self._draining.discard(index)
        if not self._draining:
            return RolloutDecision.PROMOTE
        return RolloutDecision.CONTINUE

    def describe(self) -> str:
        return "drain-and-switch"


def build_rollout_policy(name: str, **options) -> RolloutPolicy:
    """Instantiate a rollout policy by name (CLI / settings entry point)."""
    key = name.strip().lower()
    if key == "immediate":
        return ImmediateRollout(**options)
    if key == "canary":
        return CanaryRollout(**options)
    if key in {"drain", "drain-and-switch"}:
        return DrainAndSwitchRollout(**options)
    raise KeyError(
        f"unknown rollout policy {name!r}; "
        f"expected one of {', '.join(ROLLOUT_POLICY_NAMES)}"
    )
